//! The system-specific vs self-contained axis — the paper's portability
//! trade-off, reduced to its mechanism.
//!
//! Two ways were used to build the Alya images:
//!
//! - **self-contained**: the image carries its own MPI and (generic)
//!   interconnect userspace. It runs *anywhere* with a matching CPU
//!   architecture — but on a kernel-bypass fabric its bundled MPI cannot
//!   open the host's vendor driver, so it falls back to TCP emulation
//!   (IPoIB / IPoFabric) and Figs. 2–3 flatten.
//! - **system-specific**: the image binds the host's MPI, fabric libraries
//!   and driver stack into the container at run time. It matches bare-metal
//!   performance — and is portable only to machines with exactly that
//!   stack.

use harborsim_hw::{CpuModel, InterconnectKind};
use harborsim_net::TransportSelection;

/// How the image relates to the host software stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Containment {
    /// Everything inside the image; no host libraries needed.
    SelfContained,
    /// Host MPI + fabric userspace bind-mounted into the container.
    SystemSpecific,
}

impl Containment {
    /// Which MPI transport stack a container built this way opens on the
    /// given fabric. This single function is the mechanism behind the
    /// paper's Figure 2 and the self-contained curve of Figure 3.
    pub fn transport_selection(self, fabric: InterconnectKind) -> TransportSelection {
        match self {
            Containment::SystemSpecific => TransportSelection::Native,
            Containment::SelfContained => {
                if fabric.needs_userspace_driver() {
                    TransportSelection::TcpFallback
                } else {
                    // on plain Ethernet the native transport *is* TCP
                    TransportSelection::Native
                }
            }
        }
    }

    /// Human-readable label as used in the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            Containment::SelfContained => "self-contained",
            Containment::SystemSpecific => "system-specific",
        }
    }
}

/// Why an image cannot run on a host.
#[derive(Debug, Clone, PartialEq)]
pub enum CompatError {
    /// Binary architecture differs from the host CPU.
    ArchMismatch {
        /// Architecture the image was built for.
        image: String,
        /// Architecture of the host.
        host: String,
    },
    /// Image binaries use ISA features the host lacks (e.g. AVX-512 code on
    /// Haswell).
    IsaTooNew {
        /// Level the image requires.
        image_level: u8,
        /// Level the host provides.
        host_level: u8,
    },
    /// System-specific image requires host libraries this host lacks.
    MissingHostLib(String),
}

impl std::fmt::Display for CompatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompatError::ArchMismatch { image, host } => {
                write!(f, "image is {image} but host is {host}")
            }
            CompatError::IsaTooNew {
                image_level,
                host_level,
            } => write!(
                f,
                "image needs ISA level {image_level}, host provides {host_level}"
            ),
            CompatError::MissingHostLib(lib) => {
                write!(f, "system-specific image needs host library {lib}")
            }
        }
    }
}

/// Check whether an image built for (`arch`, `isa_level`, `required_libs`)
/// can execute on a host CPU attached to a fabric.
pub fn check_compat(
    image_arch: harborsim_hw::CpuArch,
    image_isa_level: u8,
    required_host_libs: &[String],
    host: &CpuModel,
    host_fabric: InterconnectKind,
) -> Result<(), CompatError> {
    if !image_arch.can_execute(host.arch) {
        return Err(CompatError::ArchMismatch {
            image: image_arch.to_string(),
            host: host.arch.to_string(),
        });
    }
    if image_isa_level > host.isa_level {
        return Err(CompatError::IsaTooNew {
            image_level: image_isa_level,
            host_level: host.isa_level,
        });
    }
    for lib in required_host_libs {
        // the host offers exactly its fabric's driver library
        let available = host_fabric.driver_library();
        let lib_is_fabric_driver = lib == "libmlx5/verbs" || lib == "libpsm2";
        if lib_is_fabric_driver && available != Some(lib.as_str()) {
            return Err(CompatError::MissingHostLib(lib.clone()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use harborsim_hw::CpuArch;

    #[test]
    fn self_contained_falls_back_on_kernel_bypass_fabrics() {
        assert_eq!(
            Containment::SelfContained.transport_selection(InterconnectKind::InfinibandEdr),
            TransportSelection::TcpFallback
        );
        assert_eq!(
            Containment::SelfContained.transport_selection(InterconnectKind::OmniPath100),
            TransportSelection::TcpFallback
        );
    }

    #[test]
    fn self_contained_loses_nothing_on_ethernet() {
        assert_eq!(
            Containment::SelfContained.transport_selection(InterconnectKind::GigabitEthernet),
            TransportSelection::Native
        );
        assert_eq!(
            Containment::SelfContained.transport_selection(InterconnectKind::FortyGigEthernet),
            TransportSelection::Native
        );
    }

    #[test]
    fn system_specific_always_native() {
        for fabric in [
            InterconnectKind::GigabitEthernet,
            InterconnectKind::InfinibandEdr,
            InterconnectKind::OmniPath100,
        ] {
            assert_eq!(
                Containment::SystemSpecific.transport_selection(fabric),
                TransportSelection::Native
            );
        }
    }

    #[test]
    fn arch_mismatch_detected() {
        let host = CpuModel::power9_8335gtg();
        let err = check_compat(
            CpuArch::X86_64,
            1,
            &[],
            &host,
            InterconnectKind::InfinibandEdr,
        )
        .unwrap_err();
        assert!(matches!(err, CompatError::ArchMismatch { .. }));
    }

    #[test]
    fn avx512_image_rejected_on_haswell() {
        let haswell = CpuModel::xeon_e5_2697v3();
        let err = check_compat(
            CpuArch::X86_64,
            4, // built on Skylake with AVX-512
            &[],
            &haswell,
            InterconnectKind::GigabitEthernet,
        )
        .unwrap_err();
        assert!(matches!(err, CompatError::IsaTooNew { .. }));
        // portable build (level 1) is fine
        assert!(check_compat(
            CpuArch::X86_64,
            1,
            &[],
            &haswell,
            InterconnectKind::GigabitEthernet
        )
        .is_ok());
    }

    #[test]
    fn system_specific_needs_matching_fabric_lib() {
        let skylake = CpuModel::xeon_platinum_8160();
        let libs = vec!["libpsm2".to_string()];
        // on the Omni-Path host: fine
        assert!(check_compat(
            CpuArch::X86_64,
            4,
            &libs,
            &skylake,
            InterconnectKind::OmniPath100
        )
        .is_ok());
        // same image moved to an InfiniBand host: the bind target is missing
        let err = check_compat(
            CpuArch::X86_64,
            4,
            &libs,
            &skylake,
            InterconnectKind::InfinibandEdr,
        )
        .unwrap_err();
        assert!(matches!(err, CompatError::MissingHostLib(_)));
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(Containment::SelfContained.label(), "self-contained");
        assert_eq!(Containment::SystemSpecific.label(), "system-specific");
    }
}
