//! Property-style tests of the container substrate, driven by
//! deterministic [`RngStream`] case generation.

use harborsim_container::digest::Digest;
use harborsim_container::recipe::{ImageRecipe, PackageDb};
use harborsim_container::registry::Registry;
use harborsim_container::{BuildEngine, Containment};
use harborsim_des::RngStream;
use harborsim_hw::CpuModel;
use std::collections::HashSet;

fn cases(label: &str, n: u64) -> impl Iterator<Item = RngStream> {
    let root = RngStream::new(0xC0_47A1_0004).derive(label);
    (0..n).map(move |i| root.derive_idx(i))
}

fn random_bytes(rng: &mut RngStream, max_len: u64) -> Vec<u8> {
    let len = rng.below(max_len);
    (0..len).map(|_| rng.below(256) as u8).collect()
}

fn random_word(rng: &mut RngStream, min_len: u64, max_len: u64) -> String {
    let len = min_len + rng.below(max_len - min_len + 1);
    (0..len)
        .map(|_| (b'a' + rng.below(26) as u8) as char)
        .collect()
}

/// Digests are content-deterministic and collision-free over random
/// byte strings (at test scale).
#[test]
fn digest_properties() {
    for mut rng in cases("digest", 64) {
        let a = random_bytes(&mut rng, 256);
        let b = random_bytes(&mut rng, 256);
        assert_eq!(Digest::of_bytes(&a), Digest::of_bytes(&a));
        if a != b {
            assert_ne!(Digest::of_bytes(&a), Digest::of_bytes(&b));
        }
    }
}

/// Any recipe assembled from valid instructions parses, and the parse
/// is a bijection on the instruction count.
#[test]
fn recipe_roundtrip() {
    for mut rng in cases("roundtrip", 64) {
        let pkgs: Vec<String> = (0..rng.below(6))
            .map(|_| random_word(&mut rng, 2, 10))
            .collect();
        let copy_mb = 1 + rng.below(499);
        let mut text = String::from("FROM centos:7.4\n");
        for p in &pkgs {
            text.push_str(&format!("RUN yum install {p}\n"));
        }
        text.push_str(&format!("COPY app /opt/app {copy_mb}MB\n"));
        let recipe = ImageRecipe::parse("gen", &text).unwrap();
        assert_eq!(recipe.instructions.len(), pkgs.len() + 2);
        // and it always builds (unknown packages cost metadata only)
        let out = BuildEngine::self_contained(CpuModel::xeon_e5_2697v3())
            .build(&recipe)
            .unwrap();
        assert_eq!(out.manifest.layers.len(), pkgs.len() + 2);
        assert!(out.manifest.uncompressed_bytes() >= 210_000_000 + copy_mb * 1_000_000);
    }
}

/// Layer digests chain: reordering RUN instructions changes every
/// downstream digest.
#[test]
fn layer_chain_order_sensitive() {
    for mut rng in cases("layer-chain", 64) {
        let a = random_word(&mut rng, 3, 8);
        let b = random_word(&mut rng, 3, 8);
        if a == b {
            continue;
        }
        let build = |first: &str, second: &str| {
            let text =
                format!("FROM centos:7.4\nRUN yum install {first}\nRUN yum install {second}\n");
            BuildEngine::self_contained(CpuModel::xeon_e5_2697v3())
                .build(&ImageRecipe::parse("x", &text).unwrap())
                .unwrap()
                .manifest
        };
        let ab = build(&a, &b);
        let ba = build(&b, &a);
        assert_ne!(ab.digest(), ba.digest());
        assert_ne!(ab.layers[2].digest, ba.layers[2].digest);
    }
}

/// Registry pulls are idempotent under caching: after one full pull,
/// the second plan fetches nothing.
#[test]
fn pull_caching_idempotent() {
    for mut rng in cases("pull-cache", 64) {
        let pkgs: Vec<String> = (0..1 + rng.below(4))
            .map(|_| random_word(&mut rng, 2, 8))
            .collect();
        let mut text = String::from("FROM ubuntu:16.04\n");
        for p in &pkgs {
            text.push_str(&format!("RUN apt-get install {p}\n"));
        }
        let manifest = BuildEngine::self_contained(CpuModel::power9_8335gtg())
            .build(&ImageRecipe::parse("x", &text).unwrap())
            .unwrap()
            .manifest;
        let mut reg = Registry::new();
        reg.push("x:1", &manifest);
        let mut cache = HashSet::new();
        let plan = reg.plan_pull("x:1", &cache).unwrap();
        for (d, _) in &plan.fetch {
            cache.insert(*d);
        }
        let plan2 = reg.plan_pull("x:1", &cache).unwrap();
        assert!(plan2.fully_cached());
        assert_eq!(plan2.bytes(), 0);
    }
}

/// System-specific builds never exceed the self-contained size, for any
/// package list.
#[test]
fn system_specific_never_bigger() {
    for mut rng in cases("sys-specific", 64) {
        let extra: Vec<String> = (0..rng.below(4))
            .map(|_| random_word(&mut rng, 2, 8))
            .collect();
        let mut text = String::from("FROM centos:7.4\nRUN yum install openmpi libibverbs\n");
        for p in &extra {
            text.push_str(&format!("RUN yum install {p}\n"));
        }
        let recipe = ImageRecipe::parse("x", &text).unwrap();
        let sc = BuildEngine::self_contained(CpuModel::xeon_platinum_8160())
            .build(&recipe)
            .unwrap()
            .manifest;
        let ss = BuildEngine::system_specific(
            CpuModel::xeon_platinum_8160(),
            harborsim_hw::InterconnectKind::OmniPath100,
        )
        .build(&recipe)
        .unwrap()
        .manifest;
        assert!(ss.uncompressed_bytes() <= sc.uncompressed_bytes());
        assert_eq!(ss.arch, sc.arch);
    }
}

#[test]
fn package_db_pricing_is_superadditive() {
    let db = PackageDb::standard();
    let both = db.price_run("yum install gcc openmpi");
    let gcc = db.price_run("yum install gcc");
    let mpi = db.price_run("yum install openmpi");
    // one transaction shares the metadata cost
    assert!(both.bytes < gcc.bytes + mpi.bytes);
    assert!(both.bytes > gcc.bytes.max(mpi.bytes));
}

#[test]
fn self_contained_containment_is_default_neutral() {
    // the Containment enum's two values behave differently only where the
    // fabric needs userspace drivers; sanity-pin both labels here
    assert_ne!(
        Containment::SelfContained.label(),
        Containment::SystemSpecific.label()
    );
}
