//! Property-style tests of the MPI substrate, driven by deterministic
//! [`RngStream`] case generation.

use harborsim_des::RngStream;
use harborsim_mpi::collectives::{
    allreduce_rounds, barrier_rounds, bcast_rounds, gather_rounds, AllreduceAlgo,
};
use harborsim_mpi::mapping::RankMap;
use harborsim_mpi::thread_mpi::ThreadComm;
use std::collections::HashSet;

fn cases(label: &str, n: u64) -> impl Iterator<Item = RngStream> {
    let root = RngStream::new(0x3314_0002).derive(label);
    (0..n).map(move |i| root.derive_idx(i))
}

/// Recursive-doubling rounds only pair valid ranks, and each rank
/// appears at most once per round.
#[test]
fn pairwise_rounds_are_matchings() {
    for mut rng in cases("matchings", 48) {
        let p = 2 + rng.below(298) as u32;
        let bytes = 1 + rng.below(999_999);
        for round in allreduce_rounds(AllreduceAlgo::RecursiveDoubling, p, bytes) {
            let mut seen_src = HashSet::new();
            let mut seen_dst = HashSet::new();
            for m in &round {
                assert!(m.src < p && m.dst < p);
                assert!(seen_src.insert(m.src), "duplicate sender {}", m.src);
                assert!(seen_dst.insert(m.dst), "duplicate receiver {}", m.dst);
                assert_eq!(m.bytes, bytes);
            }
        }
    }
}

/// Binomial broadcast: every rank receives exactly once, from a rank
/// that already holds the data.
#[test]
fn bcast_is_a_spanning_tree() {
    for mut rng in cases("spanning-tree", 48) {
        let p = 2 + rng.below(498) as u32;
        let mut reached: HashSet<u32> = HashSet::from([0]);
        for round in bcast_rounds(p, 8) {
            for m in &round {
                assert!(reached.contains(&m.src));
                assert!(reached.insert(m.dst));
            }
        }
        assert_eq!(reached.len() as u32, p);
    }
}

/// Barrier rounds have every rank sending exactly one message.
#[test]
fn barrier_rounds_full() {
    for mut rng in cases("barrier", 48) {
        let p = 2 + rng.below(298) as u32;
        for round in barrier_rounds(p) {
            assert_eq!(round.len() as u32, p);
        }
        assert!(!gather_rounds(p, 8).is_empty());
    }
}

/// Block mapping: ranks-per-node consecutive ranks share a node and
/// node ids are within range.
#[test]
fn block_mapping_partition() {
    for mut rng in cases("block-mapping", 48) {
        let nodes = 1 + rng.below(63) as u32;
        let rpn = 1 + rng.below(63) as u32;
        let m = RankMap::block(nodes, rpn, 1);
        for r in 0..m.ranks() {
            let n = m.node_of(r);
            assert!(n < nodes);
            assert_eq!(n, r / rpn);
        }
    }
}

/// Ring allreduce volume ~ 2·bytes·(p-1)/p per rank, independent of p's
/// shape.
#[test]
fn ring_volume_bandwidth_optimal() {
    for mut rng in cases("ring-volume", 48) {
        let p = 2 + rng.below(198) as u32;
        let bytes = 64 + rng.below(999_936);
        let rounds = allreduce_rounds(AllreduceAlgo::Ring, p, bytes);
        let per_rank_total: u64 = rounds.iter().map(|r| r[0].bytes).sum();
        let optimal = 2 * bytes * (p as u64 - 1) / p as u64;
        // chunking rounds up; allow the ceil slack
        assert!(per_rank_total >= optimal);
        assert!(per_rank_total <= optimal + 2 * (p as u64 - 1) + 2 * bytes / p as u64 + 2);
    }
}

/// The functional thread MPI satisfies the allreduce contract for random
/// vectors and rank counts (sizes bounded: threads per case are expensive).
#[test]
fn thread_mpi_allreduce_matches_reference() {
    let mut seed = 0x1234_5678_u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for size in [2usize, 3, 5, 8] {
        let inputs: Vec<Vec<f64>> = (0..size)
            .map(|_| (0..6).map(|_| (next() % 1000) as f64 / 10.0).collect())
            .collect();
        let expected: Vec<f64> = (0..6).map(|i| inputs.iter().map(|v| v[i]).sum()).collect();
        let inputs_ref = &inputs;
        let results = ThreadComm::run(size, move |comm| {
            let mut v = inputs_ref[comm.rank()].clone();
            comm.allreduce(&mut v, |a, b| a + b);
            v
        });
        for (r, got) in results.iter().enumerate() {
            for (a, b) in got.iter().zip(&expected) {
                assert!((a - b).abs() < 1e-9, "size={size} rank={r}");
            }
        }
    }
}
