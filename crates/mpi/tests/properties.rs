//! Property-based tests of the MPI substrate.

use harborsim_mpi::collectives::{
    allreduce_rounds, barrier_rounds, bcast_rounds, gather_rounds, AllreduceAlgo,
};
use harborsim_mpi::mapping::RankMap;
use harborsim_mpi::thread_mpi::ThreadComm;
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Recursive-doubling rounds only pair valid ranks, and each rank
    /// appears at most once per round.
    #[test]
    fn pairwise_rounds_are_matchings(p in 2u32..300, bytes in 1u64..1_000_000) {
        for round in allreduce_rounds(AllreduceAlgo::RecursiveDoubling, p, bytes) {
            let mut seen_src = HashSet::new();
            let mut seen_dst = HashSet::new();
            for m in &round {
                prop_assert!(m.src < p && m.dst < p);
                prop_assert!(seen_src.insert(m.src), "duplicate sender {}", m.src);
                prop_assert!(seen_dst.insert(m.dst), "duplicate receiver {}", m.dst);
                prop_assert_eq!(m.bytes, bytes);
            }
        }
    }

    /// Binomial broadcast: every rank receives exactly once, from a rank
    /// that already holds the data.
    #[test]
    fn bcast_is_a_spanning_tree(p in 2u32..500) {
        let mut reached: HashSet<u32> = HashSet::from([0]);
        for round in bcast_rounds(p, 8) {
            for m in &round {
                prop_assert!(reached.contains(&m.src));
                prop_assert!(reached.insert(m.dst));
            }
        }
        prop_assert_eq!(reached.len() as u32, p);
    }

    /// Barrier rounds have every rank sending exactly one message.
    #[test]
    fn barrier_rounds_full(p in 2u32..300) {
        for round in barrier_rounds(p) {
            prop_assert_eq!(round.len() as u32, p);
        }
        prop_assert!(!gather_rounds(p, 8).is_empty());
    }

    /// Block mapping: ranks-per-node consecutive ranks share a node and
    /// node ids are within range.
    #[test]
    fn block_mapping_partition(nodes in 1u32..64, rpn in 1u32..64) {
        let m = RankMap::block(nodes, rpn, 1);
        for r in 0..m.ranks() {
            let n = m.node_of(r);
            prop_assert!(n < nodes);
            prop_assert_eq!(n, r / rpn);
        }
    }

    /// Ring allreduce volume ~ 2·bytes·(p-1)/p per rank, independent of p's
    /// shape.
    #[test]
    fn ring_volume_bandwidth_optimal(p in 2u32..200, bytes in 64u64..1_000_000) {
        let rounds = allreduce_rounds(AllreduceAlgo::Ring, p, bytes);
        let per_rank_total: u64 = rounds.iter().map(|r| r[0].bytes).sum();
        let optimal = 2 * bytes * (p as u64 - 1) / p as u64;
        // chunking rounds up; allow the ceil slack
        prop_assert!(per_rank_total >= optimal);
        prop_assert!(per_rank_total <= optimal + 2 * (p as u64 - 1) + 2 * bytes / p as u64 + 2);
    }
}

/// The functional thread MPI satisfies the allreduce contract for random
/// vectors and rank counts (separate from proptest: threads inside
/// proptest cases are expensive, so sizes are bounded).
#[test]
fn thread_mpi_allreduce_matches_reference() {
    let mut seed = 0x1234_5678_u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for size in [2usize, 3, 5, 8] {
        let inputs: Vec<Vec<f64>> = (0..size)
            .map(|_| (0..6).map(|_| (next() % 1000) as f64 / 10.0).collect())
            .collect();
        let expected: Vec<f64> = (0..6)
            .map(|i| inputs.iter().map(|v| v[i]).sum())
            .collect();
        let inputs_ref = &inputs;
        let results = ThreadComm::run(size, move |comm| {
            let mut v = inputs_ref[comm.rank()].clone();
            comm.allreduce(&mut v, |a, b| a + b);
            v
        });
        for (r, got) in results.iter().enumerate() {
            for (a, b) in got.iter().zip(&expected) {
                assert!((a - b).abs() < 1e-9, "size={size} rank={r}");
            }
        }
    }
}
