//! # harborsim-mpi
//!
//! Simulated and functional MPI for the HarborSim study.
//!
//! Three faces of "MPI" live here:
//!
//! 1. **The workload IR** ([`workload`]): solvers describe themselves as a
//!    sequence of bulk-synchronous *steps*, each with a per-rank compute load
//!    and a list of communication phases (halo exchanges, allreduces,
//!    coupling point-to-points, ...). This is the contract between the
//!    mini-Alya solvers and the performance engines.
//! 2. **Two performance engines** that execute the IR against a cluster +
//!    network model:
//!    - [`analytic`] — closed-form bulk-synchronous estimates (LogGP +
//!      NIC-contention algebra). O(steps) cost; used for the 12,288-core
//!      scalability sweep of Fig. 3.
//!    - [`des_engine`] — a message-level discrete-event simulation: every
//!      point-to-point message and collective round becomes wire traffic
//!      with FIFO NIC queueing, eager/rendezvous protocol switching and
//!      per-message container taxes. Used at small/medium scale and to
//!      cross-validate the analytic engine.
//! 3. **A functional in-process MPI** ([`thread_mpi`]): real threads, real
//!    channels, real data. The mini-Alya solvers run on it so that their
//!    domain decomposition can be verified bit-for-bit against sequential
//!    execution — the numerical ground truth under the performance models.

pub mod analytic;
pub mod collectives;
pub mod des_engine;
pub mod engine;
pub mod mapping;
pub mod result;
pub mod thread_mpi;
pub mod workload;

pub use analytic::AnalyticEngine;
pub use des_engine::DesEngine;
pub use engine::{PerfEngine, TruncatingDes};
pub use mapping::{route_table, Placement, RankMap};
pub use result::{CommBreakdown, LinkUsage, SimResult};
pub use workload::{CommPhase, JobProfile, StepProfile};
