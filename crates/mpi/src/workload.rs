//! The workload intermediate representation.
//!
//! Bulk-synchronous solvers — Alya's CFD and FSI cases included — run as a
//! sequence of *timesteps*, each composed of local compute plus a handful of
//! communication phases. The IR captures exactly that, at the granularity
//! both performance engines can consume:
//!
//! - the **analytic** engine turns each [`CommPhase`] into a closed-form
//!   LogGP cost;
//! - the **DES** engine expands each phase into individual wire messages
//!   (collective rounds, halo neighbours, coupling pairs).
//!
//! Solvers produce a [`JobProfile`] for a given rank count; the profile is
//! placement-independent (the engines combine it with a [`crate::RankMap`]).

/// One communication phase inside a step. Sizes are bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum CommPhase {
    /// 1D chain halo exchange: every rank swaps `bytes` with each existing
    /// neighbour (`rank-1`, `rank+1`), `repeats` times back-to-back.
    Halo1D {
        /// Payload per neighbour per exchange.
        bytes: u64,
        /// Number of back-to-back exchanges (e.g. one per solver iteration
        /// when iterations are otherwise identical).
        repeats: u32,
    },
    /// 3D Cartesian halo exchange: ranks form a `dims.0 × dims.1 × dims.2`
    /// grid (consecutive ranks vary along the first axis, so block node
    /// mapping keeps first-axis neighbours local) and swap `bytes` with each
    /// of up to six face neighbours. This is the communication shape of a
    /// graph-partitioned unstructured mesh like Alya's.
    Halo3D {
        /// Rank-grid dimensions; their product must equal the rank count.
        dims: (u32, u32, u32),
        /// Payload per neighbour per exchange.
        bytes: u64,
        /// Back-to-back exchanges.
        repeats: u32,
    },
    /// Global allreduce of `bytes`, `repeats` times (CG dot products).
    Allreduce {
        /// Payload of one allreduce (8 or 16 bytes for dot products).
        bytes: u64,
        /// How many allreduces in this phase.
        repeats: u32,
    },
    /// Explicit point-to-point pairs (coupling traffic): each `(a, b)` pair
    /// exchanges `bytes` in both directions.
    Pairs {
        /// The communicating rank pairs.
        pairs: Vec<(u32, u32)>,
        /// Payload per direction.
        bytes: u64,
    },
    /// Broadcast of `bytes` from rank 0 (solver settings, time-step size).
    Bcast {
        /// Payload.
        bytes: u64,
    },
    /// Gather of `bytes_per_rank` from every rank to rank 0 (residual
    /// monitoring, witness points).
    Gather {
        /// Contribution of each rank.
        bytes_per_rank: u64,
    },
    /// Full barrier (phase separations, I/O fences).
    Barrier,
}

/// One timestep profile: per-rank compute plus ordered communication phases.
#[derive(Debug, Clone, PartialEq)]
pub struct StepProfile {
    /// Mean floating-point work per rank in this step.
    pub flops_per_rank: f64,
    /// Load imbalance: max-over-ranks / mean (1.0 = perfectly balanced).
    pub imbalance: f64,
    /// OpenMP parallel regions opened during the step (fork/join count).
    pub regions: f64,
    /// Communication phases, in program order.
    pub comm: Vec<CommPhase>,
}

impl StepProfile {
    /// A compute-only step.
    pub fn compute_only(flops_per_rank: f64, regions: f64) -> StepProfile {
        StepProfile {
            flops_per_rank,
            imbalance: 1.0,
            regions,
            comm: Vec::new(),
        }
    }

    /// Total point-to-point style messages one *interior* rank handles in
    /// this step (sends, counting collective rounds at `log2(p)`), used for
    /// sanity reporting.
    pub fn messages_per_rank(&self, ranks: u32) -> u64 {
        let logp = (ranks.max(2) as f64).log2().ceil() as u64;
        self.comm
            .iter()
            .map(|c| match c {
                CommPhase::Halo1D { repeats, .. } => 2 * *repeats as u64,
                CommPhase::Halo3D { repeats, .. } => 6 * *repeats as u64,
                CommPhase::Allreduce { repeats, .. } => logp * *repeats as u64,
                CommPhase::Pairs { pairs, .. } => {
                    // average over ranks
                    (2 * pairs.len() as u64).div_ceil(ranks.max(1) as u64)
                }
                CommPhase::Bcast { .. } => 1,
                CommPhase::Gather { .. } => 1,
                CommPhase::Barrier => logp,
            })
            .sum()
    }

    /// Total bytes an interior rank sends in this step (same conventions).
    pub fn bytes_per_rank(&self, ranks: u32) -> u64 {
        let logp = (ranks.max(2) as f64).log2().ceil() as u64;
        self.comm
            .iter()
            .map(|c| match c {
                CommPhase::Halo1D { bytes, repeats } => 2 * bytes * *repeats as u64,
                CommPhase::Halo3D { bytes, repeats, .. } => 6 * bytes * *repeats as u64,
                CommPhase::Allreduce { bytes, repeats } => logp * bytes * *repeats as u64,
                CommPhase::Pairs { pairs, bytes } => {
                    (2 * pairs.len() as u64 * bytes).div_ceil(ranks.max(1) as u64)
                }
                CommPhase::Bcast { bytes } => *bytes,
                CommPhase::Gather { bytes_per_rank } => *bytes_per_rank,
                CommPhase::Barrier => logp * 8,
            })
            .sum()
    }
}

/// Factor `p` ranks into a near-cubic 3D grid `(a, b, c)`, `a·b·c = p`,
/// with the largest extent on the first (fastest-varying, node-local) axis —
/// the layout `MPI_Dims_create` + block placement would give a 3D-partitioned
/// mesh.
pub fn factor3(p: u32) -> (u32, u32, u32) {
    assert!(p > 0);
    let mut best = (p, 1, 1);
    let mut best_score = u64::MAX;
    let mut a = 1u32;
    while a * a * a <= p {
        if p.is_multiple_of(a) {
            let rest = p / a;
            let mut b = a;
            while b * b <= rest {
                if rest.is_multiple_of(b) {
                    let c = rest / b;
                    // minimize surface ~ ab + bc + ca
                    let score =
                        (a as u64 * b as u64) + (b as u64 * c as u64) + (c as u64 * a as u64);
                    if score < best_score {
                        best_score = score;
                        // largest extent first
                        let mut dims = [a, b, c];
                        dims.sort_unstable_by(|x, y| y.cmp(x));
                        best = (dims[0], dims[1], dims[2]);
                    }
                }
                b += 1;
            }
        }
        a += 1;
    }
    best
}

/// Coordinates of `rank` in a 3D rank grid (first axis fastest).
pub fn grid_coords(rank: u32, dims: (u32, u32, u32)) -> (u32, u32, u32) {
    let (a, b, _) = dims;
    (rank % a, (rank / a) % b, rank / (a * b))
}

/// The up-to-six face neighbours of `rank` in a 3D rank grid.
pub fn grid_neighbors(rank: u32, dims: (u32, u32, u32)) -> Vec<u32> {
    let (a, b, c) = dims;
    let (x, y, z) = grid_coords(rank, dims);
    let idx = |x: u32, y: u32, z: u32| x + a * (y + b * z);
    let mut out = Vec::with_capacity(6);
    if x > 0 {
        out.push(idx(x - 1, y, z));
    }
    if x + 1 < a {
        out.push(idx(x + 1, y, z));
    }
    if y > 0 {
        out.push(idx(x, y - 1, z));
    }
    if y + 1 < b {
        out.push(idx(x, y + 1, z));
    }
    if z > 0 {
        out.push(idx(x, y, z - 1));
    }
    if z + 1 < c {
        out.push(idx(x, y, z + 1));
    }
    out
}

/// A whole job: a run-length-encoded sequence of step profiles.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JobProfile {
    /// `(step, repetitions)` in execution order.
    pub steps: Vec<(StepProfile, u32)>,
}

impl JobProfile {
    /// A job of `n` identical steps.
    pub fn uniform(step: StepProfile, n: u32) -> JobProfile {
        JobProfile {
            steps: vec![(step, n)],
        }
    }

    /// Total timesteps.
    pub fn total_steps(&self) -> u64 {
        self.steps.iter().map(|(_, n)| *n as u64).sum()
    }

    /// Total floating-point work across all ranks.
    pub fn total_flops(&self, ranks: u32) -> f64 {
        self.steps
            .iter()
            .map(|(s, n)| s.flops_per_rank * ranks as f64 * *n as f64)
            .sum()
    }

    /// Scale the job length by keeping only `n` representative steps of each
    /// kind (the engines multiply back) — used to keep DES event counts
    /// tractable. Returns `(shortened profile, time multiplier)`.
    pub fn truncated(&self, max_steps_per_kind: u32) -> (JobProfile, f64) {
        let mut shortened = JobProfile::default();
        let mut orig = 0.0;
        let mut kept = 0.0;
        for (s, n) in &self.steps {
            let keep = (*n).min(max_steps_per_kind);
            orig += *n as f64;
            kept += keep as f64;
            shortened.steps.push((s.clone(), keep));
        }
        let multiplier = if kept > 0.0 { orig / kept } else { 1.0 };
        (shortened, multiplier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_step() -> StepProfile {
        StepProfile {
            flops_per_rank: 1e9,
            imbalance: 1.05,
            regions: 40.0,
            comm: vec![
                CommPhase::Halo1D {
                    bytes: 160_000,
                    repeats: 1,
                },
                CommPhase::Allreduce {
                    bytes: 8,
                    repeats: 30,
                },
            ],
        }
    }

    #[test]
    fn uniform_job_accounting() {
        let job = JobProfile::uniform(sample_step(), 100);
        assert_eq!(job.total_steps(), 100);
        let flops = job.total_flops(112);
        assert!((flops - 1e9 * 112.0 * 100.0).abs() / flops < 1e-12);
    }

    #[test]
    fn per_rank_message_counts() {
        let s = sample_step();
        // 2 halo sends + 30 allreduces x log2(112)=7 rounds
        assert_eq!(s.messages_per_rank(112), 2 + 30 * 7);
        assert_eq!(s.bytes_per_rank(112), 2 * 160_000 + 30 * 7 * 8);
    }

    #[test]
    fn truncation_preserves_total_work() {
        let job = JobProfile::uniform(sample_step(), 600);
        let (short, mult) = job.truncated(10);
        assert_eq!(short.total_steps(), 10);
        assert!((mult - 60.0).abs() < 1e-12);
        let full = job.total_flops(8);
        let scaled = short.total_flops(8) * mult;
        assert!((full - scaled).abs() / full < 1e-12);
    }

    #[test]
    fn truncation_of_short_jobs_is_identity() {
        let job = JobProfile::uniform(sample_step(), 5);
        let (short, mult) = job.truncated(10);
        assert_eq!(short, job);
        assert_eq!(mult, 1.0);
    }

    #[test]
    fn factor3_products_and_shapes() {
        for p in [1u32, 2, 8, 28, 48, 112, 192, 640, 12_288, 97] {
            let (a, b, c) = factor3(p);
            assert_eq!(a * b * c, p, "p={p}");
            assert!(a >= b && b >= c, "sorted descending: p={p} -> {a}x{b}x{c}");
        }
        assert_eq!(factor3(8), (2, 2, 2));
        assert_eq!(factor3(64), (4, 4, 4));
        // primes degrade to a chain
        assert_eq!(factor3(97), (97, 1, 1));
    }

    #[test]
    fn grid_neighbors_symmetric_and_bounded() {
        let dims = factor3(48);
        for r in 0..48 {
            let nbs = grid_neighbors(r, dims);
            assert!(nbs.len() <= 6);
            for nb in nbs {
                assert!(nb < 48);
                assert!(
                    grid_neighbors(nb, dims).contains(&r),
                    "neighbourhood must be symmetric: {r} <-> {nb}"
                );
            }
        }
    }

    #[test]
    fn grid_coords_roundtrip() {
        let dims = (4, 3, 2);
        for r in 0..24 {
            let (x, y, z) = grid_coords(r, dims);
            assert_eq!(x + 4 * (y + 3 * z), r);
        }
    }

    #[test]
    fn consecutive_ranks_are_x_neighbors() {
        let dims = factor3(64); // (4,4,4)
                                // ranks 0 and 1 differ only in x -> neighbours (node locality)
        assert!(grid_neighbors(0, dims).contains(&1));
    }

    #[test]
    fn pairs_phase_counts() {
        let s = StepProfile {
            flops_per_rank: 0.0,
            imbalance: 1.0,
            regions: 0.0,
            comm: vec![CommPhase::Pairs {
                pairs: vec![(0, 4), (1, 5)],
                bytes: 1000,
            }],
        };
        assert!(s.messages_per_rank(8) >= 1);
        assert!(s.bytes_per_rank(8) >= 500);
    }
}
