//! The common face of the performance engines.
//!
//! [`PerfEngine`] abstracts over "execute a [`JobProfile`] against a
//! machine and report timing + traffic": the analytic engine, the
//! message-level DES engine, and [`TruncatingDes`] — the DES engine run on
//! a truncated job with the result scaled back, which is how HarborSim
//! makes message-level simulation affordable on long production runs.
//!
//! Callers that pick an engine at configuration time (the `Scenario`
//! layer in `harborsim-core`) hold a `Box<dyn PerfEngine + Send + Sync>`
//! and stay agnostic of the choice on the hot path.

use crate::analytic::AnalyticEngine;
use crate::des_engine::DesEngine;
use crate::result::SimResult;
use crate::workload::JobProfile;
use harborsim_des::trace::Recorder;

/// A performance engine: executes a workload IR and accounts for time and
/// traffic. `seed` drives the run-to-run jitter the paper averages away;
/// implementations must be deterministic given `(job, seed)`.
pub trait PerfEngine {
    /// Execute `job`, emitting spans through `rec` and returning timing +
    /// traffic accounting derived from them.
    fn run_traced(&self, job: &JobProfile, seed: u64, rec: &mut Recorder) -> SimResult;

    /// Execute `job` with a private aggregating recorder — full breakdown
    /// attribution, no span storage.
    fn run(&self, job: &JobProfile, seed: u64) -> SimResult {
        self.run_traced(job, seed, &mut Recorder::aggregating())
    }

    /// Short engine name for reports ("analytic", "des").
    fn name(&self) -> &'static str;
}

impl PerfEngine for AnalyticEngine {
    fn run_traced(&self, job: &JobProfile, seed: u64, rec: &mut Recorder) -> SimResult {
        AnalyticEngine::run_traced(self, job, seed, rec)
    }

    fn name(&self) -> &'static str {
        "analytic"
    }
}

impl PerfEngine for DesEngine {
    fn run_traced(&self, job: &JobProfile, seed: u64, rec: &mut Recorder) -> SimResult {
        DesEngine::run_traced(self, job, seed, rec)
    }

    fn name(&self) -> &'static str {
        "des"
    }
}

/// The DES engine under step truncation: simulate at most
/// `max_steps_per_kind` repetitions of each step kind and scale the result
/// back to the full job. Exact for perfectly periodic bulk-synchronous
/// phases, and the only way to run message-level simulation on
/// thousands-of-timesteps production cases.
#[derive(Debug, Clone)]
pub struct TruncatingDes {
    /// The underlying message-level engine.
    pub inner: DesEngine,
    /// Repetitions of each step kind to actually simulate.
    pub max_steps_per_kind: u32,
}

impl PerfEngine for TruncatingDes {
    /// The trace covers the *truncated* run; only the returned result is
    /// scaled back to the full job.
    fn run_traced(&self, job: &JobProfile, seed: u64, rec: &mut Recorder) -> SimResult {
        let (short, mult) = job.truncated(self.max_steps_per_kind);
        self.inner.run_traced(&short, seed, rec).scaled(mult)
    }

    fn name(&self) -> &'static str {
        "des"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::EngineConfig;
    use crate::mapping::RankMap;
    use crate::workload::StepProfile;
    use harborsim_hw::NodeSpec;
    use harborsim_net::{DataPath, NetworkModel, Topology, TransportSelection};

    fn engines() -> (AnalyticEngine, DesEngine) {
        let node = NodeSpec::dual_socket(harborsim_hw::CpuModel::xeon_e5_2697v3(), 128);
        let network = NetworkModel::compose(
            harborsim_hw::InterconnectKind::GigabitEthernet,
            TransportSelection::Native,
            DataPath::Host,
            Topology::small_cluster(),
        );
        let map = RankMap::block(2, 4, 1);
        let a = AnalyticEngine::new(node.clone(), network.clone(), map, EngineConfig::default());
        // the DES twin shares the analytic engine's table, like a compiled
        // scenario plan does
        let d = DesEngine::with_routes(
            node,
            network,
            map,
            EngineConfig::default(),
            a.routes().clone(),
        );
        (a, d)
    }

    #[test]
    fn trait_dispatch_matches_inherent_calls() {
        let (a, d) = engines();
        let job = JobProfile::uniform(StepProfile::compute_only(1e8, 4.0), 6);
        let dyn_a: &dyn PerfEngine = &a;
        let dyn_d: &dyn PerfEngine = &d;
        assert_eq!(dyn_a.run(&job, 9).elapsed, a.run(&job, 9).elapsed);
        assert_eq!(dyn_d.run(&job, 9).elapsed, d.run(&job, 9).elapsed);
        assert_eq!(dyn_a.name(), "analytic");
        assert_eq!(dyn_d.name(), "des");
    }

    #[test]
    fn truncating_des_scales_back_to_full_job() {
        let (_, d) = engines();
        let job = JobProfile::uniform(StepProfile::compute_only(5e7, 2.0), 40);
        let trunc = TruncatingDes {
            inner: d.clone(),
            max_steps_per_kind: 5,
        };
        let full = trunc.run(&job, 3);
        let (short, mult) = job.truncated(5);
        let manual = d.run(&short, 3).scaled(mult);
        assert_eq!(full.elapsed, manual.elapsed);
        assert!(mult > 1.0);
    }
}
