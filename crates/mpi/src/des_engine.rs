//! The message-level discrete-event performance engine.
//!
//! Every point-to-point message and every collective round of the workload
//! becomes simulated wire traffic:
//!
//! - each rank is a little interpreter over its private instruction stream
//!   (compute / send / recv), generated lazily from the [`JobProfile`];
//! - sends are *posted* (Isend semantics): the rank pays the per-message CPU
//!   overhead and moves on, while the payload claims every link of its
//!   route — node uplink, spine crossing, receiver downlink — as FIFO
//!   [`TypedResource`]s carved into node-stream slots, the same routed graph
//!   the analytic engine costs with its fluid schedule;
//! - intra-node messages serialize through a per-node memory/bridge pipe;
//! - messages above the eager threshold use a rendezvous handshake: the
//!   payload may only enter the NIC once the receiver has posted the
//!   matching receive and a request/ack round-trip has elapsed;
//! - receives block the rank until arrival (+ receive overhead).
//!
//! The protocol state machine is a typed event enum (`Ev`) over the
//! allocation-free DES kernel: event payloads are `Copy` values in the
//! engine's slab arena, instruction queues / resources / per-link tallies
//! live in a pooled `DesScratch` reused across runs, so the steady-state
//! event loop of `plan.execute(seed)` performs no heap allocation. The
//! event ordering is identical — schedule-for-schedule — to the original
//! boxed-closure implementation, so results are bit-for-bit unchanged.
//!
//! The engine is deterministic for a given seed and cross-validated against
//! the analytic engine in `tests/engines_agree.rs`.

use crate::analytic::EngineConfig;
use crate::collectives::{log2_rounds, AllreduceAlgo};
use crate::mapping::{route_table, RankMap};
use crate::result::{CommBreakdown, LinkUsage, SimResult};
use crate::workload::{CommPhase, JobProfile};
use harborsim_des::trace::{Recorder, SpanCategory};
use harborsim_des::{Engine, Event, RngStream, SimDuration, SimTime, TypedResource};
use harborsim_hw::NodeSpec;
use harborsim_net::{LinkId, NetworkModel, Route, RouteTable, ScratchPool, TransportParams};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Communication family, for wait-time attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Family {
    Halo,
    Allreduce,
    Pairs,
    Other,
}

impl Family {
    fn category(self) -> SpanCategory {
        match self {
            Family::Halo => SpanCategory::Halo,
            Family::Allreduce => SpanCategory::Allreduce,
            Family::Pairs => SpanCategory::Pairs,
            Family::Other => SpanCategory::Other,
        }
    }
}

/// One primitive instruction of a rank's stream.
#[derive(Debug, Clone)]
enum PrimOp {
    /// Busy for this many seconds.
    Compute(f64),
    /// Post a message (Isend): pay overhead, enqueue payload, continue.
    Send { dst: u32, bytes: u64, mid: u64 },
    /// Block until message `mid` from `src` has arrived. (`src` is implied
    /// by `mid`; kept for trace readability when debugging expansions.)
    Recv {
        #[allow(dead_code)]
        src: u32,
        mid: u64,
        family: Family,
    },
}

/// Deterministic directed-message id: both endpoints derive the same id
/// from what they know locally.
fn match_id(uid: u64, round: u32, rep: u32, src: u32, dst: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in [uid, round as u64, rep as u64, src as u64, dst as u64] {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        h ^= h >> 29;
    }
    h
}

/// Program-position cursor of one rank.
#[derive(Debug, Clone, Default)]
struct Cursor {
    block: usize,
    rep: u32,
    item: usize, // 0 = compute, 1.. = comm phase index + 1
}

struct RankState {
    queue: VecDeque<PrimOp>,
    cursor: Cursor,
    rng: RngStream,
    finished: bool,
}

#[derive(Default)]
struct MsgState {
    arrived: bool,
    /// Rank blocked on this message, with post time and family.
    waiting: Option<(u32, SimTime, Family)>,
    recv_posted: bool,
    /// Sender parked waiting for the rendezvous partner.
    rdv_sender: Option<(u32, u32, u64)>,
}

/// Shared immutable job context.
struct JobCtx {
    job: JobProfile,
    map: RankMap,
    node: NodeSpec,
    inter: TransportParams,
    intra: TransportParams,
    /// Serialized per-message bridge cost (Docker), 0 on host networking.
    bridge_serial_s: f64,
    config: EngineConfig,
    routes: Arc<RouteTable>,
    /// Per-slot drain rate of each link (bytes/s), dense by link id.
    link_rate: Arc<[f64]>,
}

struct Sim {
    ctx: Arc<JobCtx>,
    ranks: Vec<RankState>,
    /// One FIFO resource per fabric link, `capacity / node-stream` slots each.
    links: Vec<TypedResource<Ev>>,
    pipes: Vec<TypedResource<Ev>>,
    bridges: Vec<TypedResource<Ev>>,
    msgs: HashMap<u64, MsgState>,
    live_ranks: u32,
    inter_msgs: u64,
    intra_msgs: u64,
    inter_bytes: u64,
    /// Fluid per-link tallies (`bytes / capacity`), kept engine-comparable
    /// with the analytic schedule — queueing time is *not* counted here.
    link_busy: Vec<f64>,
    link_bytes: Vec<u64>,
    /// Trace sink; compute/wait attribution is derived from it after the run.
    rec: Recorder,
}

type Eng = Engine<Sim, Ev>;

/// The protocol state machine as a typed, `Copy` event payload — the
/// allocation-free replacement for the boxed continuation closures. Each
/// variant corresponds 1:1 to one closure of the original implementation,
/// scheduled at exactly the same points, so the `(time, seq)` event order
/// (and therefore every simulation output) is bit-identical.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Drive `rank`'s interpreter forward.
    Advance { rank: u32 },
    /// Rendezvous handshake finished: move the payload onto the node path.
    Transfer {
        src: u32,
        dst: u32,
        bytes: u64,
        mid: u64,
    },
    /// The node's serialized bridge granted one message slot.
    BridgeGranted {
        node: u32,
        src: u32,
        dst: u32,
        bytes: u64,
        mid: u64,
    },
    /// The bridge hold elapsed: release it and hit the wire.
    BridgeDone {
        node: u32,
        src: u32,
        dst: u32,
        bytes: u64,
        mid: u64,
    },
    /// The intra-node pipe granted; hold it for the serialization time.
    PipeGranted {
        node: u32,
        ser: SimDuration,
        lat: SimDuration,
        mid: u64,
    },
    /// Payload fully through the pipe: release, then deliver after latency.
    PipeSerDone {
        node: u32,
        lat: SimDuration,
        mid: u64,
    },
    /// Link `idx - 1` of the route granted; claim the next one.
    RouteGranted {
        route: Route,
        idx: u8,
        ser: SimDuration,
        lat: SimDuration,
        mid: u64,
    },
    /// Payload streamed across all held links: release them, deliver later.
    RouteSerDone {
        route: Route,
        lat: SimDuration,
        mid: u64,
    },
    /// Message arrived at the receiver.
    Deliver { mid: u64 },
}

impl Event<Sim> for Ev {
    fn fire(self, eng: &mut Eng, sim: &mut Sim) {
        match self {
            Ev::Advance { rank } => advance(eng, sim, rank),
            Ev::Transfer {
                src,
                dst,
                bytes,
                mid,
            } => enqueue_transfer(eng, sim, src, dst, bytes, mid),
            Ev::BridgeGranted {
                node,
                src,
                dst,
                bytes,
                mid,
            } => {
                let hold = SimDuration::from_secs_f64(sim.ctx.bridge_serial_s);
                // bridge tracks sit above the rank tracks: ranks + node
                let track = sim.ctx.map.ranks() + node;
                let t0 = eng.now();
                sim.rec.span(
                    SpanCategory::Bridge,
                    "bridge-serialization",
                    track,
                    t0,
                    t0 + hold,
                );
                eng.schedule_event(
                    hold,
                    Ev::BridgeDone {
                        node,
                        src,
                        dst,
                        bytes,
                        mid,
                    },
                );
            }
            Ev::BridgeDone {
                node,
                src,
                dst,
                bytes,
                mid,
            } => {
                sim.bridges[node as usize].release(eng);
                enqueue_transfer_wire(eng, sim, src, dst, bytes, mid);
            }
            Ev::PipeGranted {
                node,
                ser,
                lat,
                mid,
            } => {
                // hold the pipe for the serialization time
                eng.schedule_event(ser, Ev::PipeSerDone { node, lat, mid });
            }
            Ev::PipeSerDone { node, lat, mid } => {
                sim.pipes[node as usize].release(eng);
                // payload fully through; delivery after the latency
                eng.schedule_event(lat, Ev::Deliver { mid });
            }
            Ev::RouteGranted {
                route,
                idx,
                ser,
                lat,
                mid,
            } => acquire_route(eng, sim, route, idx as usize, ser, lat, mid),
            Ev::RouteSerDone { route, lat, mid } => {
                for &l in route.links() {
                    sim.links[l.index()].release(eng);
                }
                // payload fully on the wire; delivery after transport +
                // switch latency
                eng.schedule_event(lat, Ev::Deliver { mid });
            }
            Ev::Deliver { mid } => deliver(eng, sim, mid),
        }
    }
}

/// Per-run working state, pooled across `run_traced` calls so a cached
/// plan's execute-many loop reuses every allocation: the event arena and
/// heap, rank instruction queues, link/pipe/bridge resources, the message
/// table, and the per-link tally vectors.
#[derive(Default)]
struct DesScratch {
    eng: Eng,
    ranks: Vec<RankState>,
    links: Vec<TypedResource<Ev>>,
    pipes: Vec<TypedResource<Ev>>,
    bridges: Vec<TypedResource<Ev>>,
    msgs: HashMap<u64, MsgState>,
    link_busy: Vec<f64>,
    link_bytes: Vec<u64>,
}

impl DesScratch {
    fn reset(&mut self, p: u32, root: &RngStream, slots: &[u32], nodes: u32, nlinks: usize) {
        self.eng.reset();
        self.ranks.truncate(p as usize);
        for (r, rs) in self.ranks.iter_mut().enumerate() {
            rs.queue.clear();
            rs.cursor = Cursor::default();
            rs.rng = root.derive_idx(r as u64);
            rs.finished = false;
        }
        for r in self.ranks.len() as u64..p as u64 {
            self.ranks.push(RankState {
                queue: VecDeque::new(),
                cursor: Cursor::default(),
                rng: root.derive_idx(r),
                finished: false,
            });
        }
        if self.links.len() == slots.len() {
            for (res, &s) in self.links.iter_mut().zip(slots) {
                res.reset(s);
            }
        } else {
            self.links.clear();
            self.links
                .extend(slots.iter().map(|&s| TypedResource::new(s)));
        }
        for pool in [&mut self.pipes, &mut self.bridges] {
            if pool.len() == nodes as usize {
                for res in pool.iter_mut() {
                    res.reset(1);
                }
            } else {
                pool.clear();
                pool.extend((0..nodes).map(|_| TypedResource::new(1)));
            }
        }
        self.msgs.clear();
        self.link_busy.clear();
        self.link_busy.resize(nlinks, 0.0);
        self.link_bytes.clear();
        self.link_bytes.resize(nlinks, 0);
    }
}

/// The message-level engine.
#[derive(Debug, Clone)]
pub struct DesEngine {
    /// Node hardware.
    pub node: NodeSpec,
    /// Effective network model.
    pub network: NetworkModel,
    /// Rank placement.
    pub map: RankMap,
    /// Engine knobs (shared type with the analytic engine).
    pub config: EngineConfig,
    routes: Arc<RouteTable>,
    /// Per-link slot counts, precomputed once per engine.
    slots: Arc<[u32]>,
    /// Per-slot drain rate of each link (bytes/s), precomputed once.
    link_rate: Arc<[f64]>,
    scratch: ScratchPool<DesScratch>,
}

impl DesEngine {
    /// Build an engine, deriving the route table from the placement and
    /// network. Prefer [`DesEngine::with_routes`] when another engine shares
    /// the same plan — the table is built once per plan, not per engine.
    pub fn new(
        node: NodeSpec,
        network: NetworkModel,
        map: RankMap,
        config: EngineConfig,
    ) -> DesEngine {
        let routes = Arc::new(route_table(&map, &network));
        DesEngine::with_routes(node, network, map, config, routes)
    }

    /// Build an engine over an already-built route table.
    pub fn with_routes(
        node: NodeSpec,
        network: NetworkModel,
        map: RankMap,
        config: EngineConfig,
        routes: Arc<RouteTable>,
    ) -> DesEngine {
        assert_eq!(
            routes.ranks(),
            map.ranks(),
            "route table must match placement"
        );
        // each link is carved into slots of the node stream rate: a node
        // uplink is one slot (one kernel-fed wire), a healthy leaf uplink is
        // taper × nodes_per_leaf slots — messages serialize only where the
        // fabric is actually narrower than the offered streams
        let graph = routes.graph();
        let stream = network.inter.bandwidth_bps.min(network.nic_bw_bps);
        let mut slots = Vec::with_capacity(graph.len());
        let mut link_rate = Vec::with_capacity(graph.len());
        for i in 0..graph.len() {
            let cap = graph.capacity_bps(LinkId(i as u32));
            let s = ((cap / stream).floor() as u32).max(1);
            slots.push(s);
            link_rate.push(cap / s as f64);
        }
        DesEngine {
            node,
            network,
            map,
            config,
            routes,
            slots: slots.into(),
            link_rate: link_rate.into(),
            scratch: ScratchPool::new(),
        }
    }

    /// The route table all inter-node traffic flows over.
    pub fn routes(&self) -> &Arc<RouteTable> {
        &self.routes
    }

    /// Execute `job`, simulating every message. `seed` drives compute
    /// jitter. Cost is `O(total messages · log pending-events)`.
    pub fn run(&self, job: &JobProfile, seed: u64) -> SimResult {
        self.run_traced(job, seed, &mut Recorder::aggregating())
    }

    /// Execute `job`, emitting per-rank compute / wait / protocol / bridge /
    /// link spans through `rec` (one track per rank; bridge tracks at
    /// `ranks..ranks+nodes`, link tracks above those). The `compute` and
    /// `comm` attribution in the returned [`SimResult`] is *derived from*
    /// the recorded spans; with a disabled recorder `elapsed` and the
    /// traffic counters are still exact but the attribution comes out zero.
    pub fn run_traced(&self, job: &JobProfile, seed: u64, rec: &mut Recorder) -> SimResult {
        let p = self.map.ranks();
        let graph = self.routes.graph();
        let root = RngStream::new(seed).derive("des-run");
        let ctx = Arc::new(JobCtx {
            job: job.clone(),
            map: self.map,
            node: self.node.clone(),
            inter: self.network.inter,
            intra: self.network.intra,
            bridge_serial_s: self.network.node_serialized_per_msg_s,
            config: self.config.clone(),
            routes: self.routes.clone(),
            link_rate: self.link_rate.clone(),
        });
        let mut local = Recorder::like(rec);
        local.declare_tracks(p);

        let mut scratch = self
            .scratch
            .take()
            .unwrap_or_else(|| Box::new(DesScratch::default()));
        scratch.reset(p, &root, &self.slots, self.map.nodes, graph.len());
        let mut eng = std::mem::take(&mut scratch.eng);
        let mut sim = Sim {
            ctx,
            ranks: std::mem::take(&mut scratch.ranks),
            links: std::mem::take(&mut scratch.links),
            pipes: std::mem::take(&mut scratch.pipes),
            bridges: std::mem::take(&mut scratch.bridges),
            msgs: std::mem::take(&mut scratch.msgs),
            live_ranks: p,
            inter_msgs: 0,
            intra_msgs: 0,
            inter_bytes: 0,
            link_busy: std::mem::take(&mut scratch.link_busy),
            link_bytes: std::mem::take(&mut scratch.link_bytes),
            rec: local,
        };

        for r in 0..p {
            eng.schedule_event(SimDuration::ZERO, Ev::Advance { rank: r });
        }
        eng.run(&mut sim);
        assert_eq!(
            sim.live_ranks, 0,
            "ranks deadlocked: {} still live",
            sim.live_ranks
        );

        let links = if sim.inter_bytes > 0 {
            let g = self.routes.graph();
            (0..g.len())
                .map(|i| LinkUsage {
                    label: g.label(LinkId(i as u32)),
                    busy_s: sim.link_busy[i],
                    bytes: sim.link_bytes[i],
                })
                .collect()
        } else {
            Vec::new()
        };
        let result = SimResult {
            elapsed: eng.now() - SimTime::ZERO,
            compute: sim.rec.rollup().max_track(SpanCategory::Compute),
            comm: CommBreakdown::from_trace(sim.rec.rollup()),
            inter_node_msgs: sim.inter_msgs,
            intra_node_msgs: sim.intra_msgs,
            inter_node_bytes: sim.inter_bytes,
            links,
            engine: "des",
        };
        rec.merge(sim.rec);

        // hand the working state back for the next run
        scratch.eng = eng;
        scratch.ranks = sim.ranks;
        scratch.links = sim.links;
        scratch.pipes = sim.pipes;
        scratch.bridges = sim.bridges;
        scratch.msgs = sim.msgs;
        scratch.link_busy = sim.link_busy;
        scratch.link_bytes = sim.link_bytes;
        self.scratch.put(scratch);
        result
    }
}

/// Refill `rank`'s instruction queue from the next program item, pushing
/// directly into the rank's (pooled) queue. Returns `false` when the
/// program is exhausted.
fn refill(sim: &mut Sim, rank: u32) -> bool {
    let ctx = sim.ctx.clone();
    let p = ctx.map.ranks();
    loop {
        let cur = sim.ranks[rank as usize].cursor.clone();
        let Some((step, reps)) = ctx.job.steps.get(cur.block) else {
            return false;
        };
        if cur.rep >= *reps {
            let rs = &mut sim.ranks[rank as usize];
            rs.cursor.block += 1;
            rs.cursor.rep = 0;
            rs.cursor.item = 0;
            continue;
        }
        // uid identifying (block, rep): phases add their index
        let uid = ((cur.block as u64) << 40) | ((cur.rep as u64) << 8);
        if cur.item == 0 {
            // compute item
            sim.ranks[rank as usize].cursor.item = 1;
            if step.flops_per_rank > 0.0 {
                let rs = &mut sim.ranks[rank as usize];
                let shape = 1.0 + (step.imbalance - 1.0) * rs.rng.uniform();
                let jitter = rs.rng.lognormal_factor(ctx.config.jitter_sigma);
                let flops = step.flops_per_rank * shape * ctx.config.compute_tax;
                let secs =
                    ctx.node
                        .rank_compute_seconds(flops, ctx.map.threads_per_rank, step.regions)
                        * jitter;
                rs.queue.push_back(PrimOp::Compute(secs));
                return true;
            }
            continue;
        }
        let phase_idx = cur.item - 1;
        if phase_idx >= step.comm.len() {
            let rs = &mut sim.ranks[rank as usize];
            rs.cursor.rep += 1;
            rs.cursor.item = 0;
            continue;
        }
        sim.ranks[rank as usize].cursor.item += 1;
        let uid = uid | (phase_idx as u64 + 1);
        let queue = &mut sim.ranks[rank as usize].queue;
        let before = queue.len();
        expand_phase(&ctx, rank, p, &step.comm[phase_idx], uid, queue);
        if queue.len() > before {
            return true;
        }
    }
}

/// Emit `rank`'s instructions for one communication phase.
fn expand_phase(
    ctx: &JobCtx,
    rank: u32,
    p: u32,
    phase: &CommPhase,
    uid: u64,
    ops: &mut VecDeque<PrimOp>,
) {
    if p <= 1 {
        return;
    }
    let r = rank;
    match phase {
        CommPhase::Halo1D { bytes, repeats } => {
            let left = r.checked_sub(1);
            let right = (r + 1 < p).then_some(r + 1);
            for k in 0..*repeats {
                for nb in [left, right].into_iter().flatten() {
                    ops.push_back(PrimOp::Send {
                        dst: nb,
                        bytes: *bytes,
                        mid: match_id(uid, 0, k, r, nb),
                    });
                }
                for nb in [left, right].into_iter().flatten() {
                    ops.push_back(PrimOp::Recv {
                        src: nb,
                        mid: match_id(uid, 0, k, nb, r),
                        family: Family::Halo,
                    });
                }
            }
        }
        CommPhase::Halo3D {
            dims,
            bytes,
            repeats,
        } => {
            debug_assert_eq!(dims.0 * dims.1 * dims.2, p);
            let neighbors = crate::workload::grid_neighbors(r, *dims);
            for k in 0..*repeats {
                for &nb in &neighbors {
                    ops.push_back(PrimOp::Send {
                        dst: nb,
                        bytes: *bytes,
                        mid: match_id(uid, 0, k, r, nb),
                    });
                }
                for &nb in &neighbors {
                    ops.push_back(PrimOp::Recv {
                        src: nb,
                        mid: match_id(uid, 0, k, nb, r),
                        family: Family::Halo,
                    });
                }
            }
        }
        CommPhase::Allreduce { bytes, repeats } => {
            for k in 0..*repeats {
                expand_allreduce(ctx.config.allreduce_algo, r, p, *bytes, uid, k, ops);
            }
        }
        CommPhase::Pairs { pairs, bytes } => {
            for (i, &(a, b)) in pairs.iter().enumerate() {
                let other = if a == r {
                    b
                } else if b == r {
                    a
                } else {
                    continue;
                };
                ops.push_back(PrimOp::Send {
                    dst: other,
                    bytes: *bytes,
                    mid: match_id(uid, i as u32, 0, r, other),
                });
                ops.push_back(PrimOp::Recv {
                    src: other,
                    mid: match_id(uid, i as u32, 0, other, r),
                    family: Family::Pairs,
                });
            }
        }
        CommPhase::Bcast { bytes } => {
            let rounds = log2_rounds(p);
            if r > 0 {
                let level = 31 - r.leading_zeros(); // round in which r receives
                let src = r - (1 << level);
                ops.push_back(PrimOp::Recv {
                    src,
                    mid: match_id(uid, level, 0, src, r),
                    family: Family::Other,
                });
                for k in (level + 1)..rounds {
                    let dst = r + (1 << k);
                    if dst < p {
                        ops.push_back(PrimOp::Send {
                            dst,
                            bytes: *bytes,
                            mid: match_id(uid, k, 0, r, dst),
                        });
                    }
                }
            } else {
                for k in 0..rounds {
                    let dst = 1u32 << k;
                    if dst < p {
                        ops.push_back(PrimOp::Send {
                            dst,
                            bytes: *bytes,
                            mid: match_id(uid, k, 0, 0, dst),
                        });
                    }
                }
            }
        }
        CommPhase::Gather { bytes_per_rank } => {
            if r == 0 {
                for src in 1..p {
                    ops.push_back(PrimOp::Recv {
                        src,
                        mid: match_id(uid, 0, 0, src, 0),
                        family: Family::Other,
                    });
                }
            } else {
                ops.push_back(PrimOp::Send {
                    dst: 0,
                    bytes: *bytes_per_rank,
                    mid: match_id(uid, 0, 0, r, 0),
                });
            }
        }
        CommPhase::Barrier => {
            for k in 0..log2_rounds(p) {
                let dist = 1u32 << k;
                let dst = (r + dist) % p;
                let src = (r + p - dist) % p;
                ops.push_back(PrimOp::Send {
                    dst,
                    bytes: 8,
                    mid: match_id(uid, k, 0, r, dst),
                });
                ops.push_back(PrimOp::Recv {
                    src,
                    mid: match_id(uid, k, 0, src, r),
                    family: Family::Other,
                });
            }
        }
    }
}

fn expand_allreduce(
    algo: AllreduceAlgo,
    r: u32,
    p: u32,
    bytes: u64,
    uid: u64,
    rep: u32,
    ops: &mut VecDeque<PrimOp>,
) {
    match algo {
        AllreduceAlgo::RecursiveDoubling => {
            for k in 0..log2_rounds(p) {
                let partner = r ^ (1 << k);
                if partner < p {
                    ops.push_back(PrimOp::Send {
                        dst: partner,
                        bytes,
                        mid: match_id(uid, k, rep, r, partner),
                    });
                    ops.push_back(PrimOp::Recv {
                        src: partner,
                        mid: match_id(uid, k, rep, partner, r),
                        family: Family::Allreduce,
                    });
                }
            }
        }
        AllreduceAlgo::Ring => {
            let chunk = bytes.div_ceil(p as u64).max(1);
            let right = (r + 1) % p;
            let left = (r + p - 1) % p;
            for j in 0..2 * (p - 1) {
                ops.push_back(PrimOp::Send {
                    dst: right,
                    bytes: chunk,
                    mid: match_id(uid, j, rep, r, right),
                });
                ops.push_back(PrimOp::Recv {
                    src: left,
                    mid: match_id(uid, j, rep, left, r),
                    family: Family::Allreduce,
                });
            }
        }
        AllreduceAlgo::Rabenseifner => {
            let rounds = log2_rounds(p);
            let mut round_no = 0u32;
            for k in 0..rounds {
                let vol = (bytes >> (k + 1)).max(1);
                push_pairwise(r, p, k, vol, uid, rep, round_no, ops);
                round_no += 1;
            }
            for k in (0..rounds).rev() {
                let vol = (bytes >> (k + 1)).max(1);
                push_pairwise(r, p, k, vol, uid, rep, round_no, ops);
                round_no += 1;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn push_pairwise(
    r: u32,
    p: u32,
    k: u32,
    bytes: u64,
    uid: u64,
    rep: u32,
    round_no: u32,
    ops: &mut VecDeque<PrimOp>,
) {
    let partner = r ^ (1 << k);
    if partner < p {
        ops.push_back(PrimOp::Send {
            dst: partner,
            bytes,
            mid: match_id(uid, round_no, rep, r, partner),
        });
        ops.push_back(PrimOp::Recv {
            src: partner,
            mid: match_id(uid, round_no, rep, partner, r),
            family: Family::Allreduce,
        });
    }
}

/// Drive `rank` forward until it blocks, computes, or finishes.
fn advance(eng: &mut Eng, sim: &mut Sim, rank: u32) {
    loop {
        let op = match sim.ranks[rank as usize].queue.pop_front() {
            Some(op) => op,
            None => {
                if refill(sim, rank) {
                    continue;
                }
                let rs = &mut sim.ranks[rank as usize];
                if !rs.finished {
                    rs.finished = true;
                    sim.live_ranks -= 1;
                }
                return;
            }
        };
        match op {
            PrimOp::Compute(secs) => {
                let d = SimDuration::from_secs_f64(secs);
                let now = eng.now();
                sim.rec
                    .span(SpanCategory::Compute, "solver-compute", rank, now, now + d);
                eng.schedule_event(d, Ev::Advance { rank });
                return;
            }
            PrimOp::Send { dst, bytes, mid } => {
                let overhead = start_send(eng, sim, rank, dst, bytes, mid);
                let d = SimDuration::from_secs_f64(overhead);
                let now = eng.now();
                sim.rec
                    .span(SpanCategory::Protocol, "send-overhead", rank, now, now + d);
                eng.schedule_event(d, Ev::Advance { rank });
                return;
            }
            PrimOp::Recv {
                src: _,
                mid,
                family,
            } => {
                let now = eng.now();
                let m = sim.msgs.entry(mid).or_default();
                if m.arrived {
                    sim.msgs.remove(&mid);
                    // same-node vs inter overhead difference is tiny on the
                    // receive side; use the transport the sender used
                    let o = sim.ctx.intra.overhead_s.max(sim.ctx.inter.overhead_s);
                    let d = SimDuration::from_secs_f64(o);
                    sim.rec
                        .span(SpanCategory::Protocol, "recv-overhead", rank, now, now + d);
                    eng.schedule_event(d, Ev::Advance { rank });
                    return;
                }
                m.recv_posted = true;
                m.waiting = Some((rank, now, family));
                if let Some((src, dst, bytes)) = m.rdv_sender.take() {
                    // rendezvous partner was parked: run the handshake now
                    let t = transport_for(sim, src, dst);
                    let handshake = 2.0 * (t.latency_s + 2.0 * t.overhead_s);
                    let hd = SimDuration::from_secs_f64(handshake);
                    sim.rec.span(
                        SpanCategory::Protocol,
                        "rendezvous-handshake",
                        src,
                        now,
                        now + hd,
                    );
                    eng.schedule_event(
                        hd,
                        Ev::Transfer {
                            src,
                            dst,
                            bytes,
                            mid,
                        },
                    );
                }
                return;
            }
        }
    }
}

fn transport_for(sim: &Sim, src: u32, dst: u32) -> &TransportParams {
    if sim.ctx.map.same_node(src, dst) {
        &sim.ctx.intra
    } else {
        &sim.ctx.inter
    }
}

/// Post a message; returns the sender-side CPU overhead to charge.
fn start_send(eng: &mut Eng, sim: &mut Sim, src: u32, dst: u32, bytes: u64, mid: u64) -> f64 {
    let same = sim.ctx.map.same_node(src, dst);
    if same {
        sim.intra_msgs += 1;
    } else {
        sim.inter_msgs += 1;
        sim.inter_bytes += bytes;
    }
    let t = *transport_for(sim, src, dst);
    if bytes > t.eager_threshold {
        // rendezvous: the payload may move only once the receiver is ready
        let m = sim.msgs.entry(mid).or_default();
        if m.recv_posted {
            let handshake = 2.0 * (t.latency_s + 2.0 * t.overhead_s);
            let hd = SimDuration::from_secs_f64(handshake);
            let now = eng.now();
            sim.rec.span(
                SpanCategory::Protocol,
                "rendezvous-handshake",
                src,
                now,
                now + hd,
            );
            eng.schedule_event(
                hd,
                Ev::Transfer {
                    src,
                    dst,
                    bytes,
                    mid,
                },
            );
        } else {
            m.rdv_sender = Some((src, dst, bytes));
        }
    } else {
        enqueue_transfer(eng, sim, src, dst, bytes, mid);
    }
    t.overhead_s
}

/// Queue the payload on the sending node's wire (NIC or intra pipe),
/// passing first through the node's serialized bridge path if the job
/// runs under Docker networking.
fn enqueue_transfer(eng: &mut Eng, sim: &mut Sim, src: u32, dst: u32, bytes: u64, mid: u64) {
    let serial = sim.ctx.bridge_serial_s;
    if serial > 0.0 {
        let node = sim.ctx.map.node_of(src);
        sim.bridges[node as usize].acquire(
            eng,
            Ev::BridgeGranted {
                node,
                src,
                dst,
                bytes,
                mid,
            },
        );
    } else {
        enqueue_transfer_wire(eng, sim, src, dst, bytes, mid);
    }
}

/// Queue the payload directly on the wire: the intra-node pipe, or every
/// link of the message's route.
fn enqueue_transfer_wire(eng: &mut Eng, sim: &mut Sim, src: u32, dst: u32, bytes: u64, mid: u64) {
    let t = *transport_for(sim, src, dst);
    if sim.ctx.map.same_node(src, dst) {
        let node = sim.ctx.map.node_of(src);
        let ser = SimDuration::from_secs_f64(t.serialization_seconds(bytes));
        let lat = SimDuration::from_secs_f64(t.latency_s);
        sim.pipes[node as usize].acquire(
            eng,
            Ev::PipeGranted {
                node,
                ser,
                lat,
                mid,
            },
        );
        return;
    }
    let route = sim.ctx.routes.route(src, dst);
    // fluid tallies for the utilization table (queueing excluded, so the
    // numbers stay directly comparable with the analytic schedule)
    let graph = sim.ctx.routes.graph();
    let mut rate = f64::INFINITY;
    for &l in route.links() {
        sim.link_busy[l.index()] += bytes as f64 / graph.capacity_bps(l);
        sim.link_bytes[l.index()] += bytes;
        rate = rate.min(sim.ctx.link_rate[l.index()]);
    }
    let ser = SimDuration::from_secs_f64(bytes as f64 / rate);
    let lat = SimDuration::from_secs_f64(t.latency_s + route.latency_s());
    acquire_route(eng, sim, route, 0, ser, lat, mid);
}

/// Claim the route's links one by one in traversal order (node-up, leaf-up,
/// leaf-down, node-down — a fixed class order, so chained holds cannot
/// deadlock), then hold them all for the serialization time.
fn acquire_route(
    eng: &mut Eng,
    sim: &mut Sim,
    route: Route,
    idx: usize,
    ser: SimDuration,
    lat: SimDuration,
    mid: u64,
) {
    if let Some(&link) = route.links().get(idx) {
        sim.links[link.index()].acquire(
            eng,
            Ev::RouteGranted {
                route,
                idx: (idx + 1) as u8,
                ser,
                lat,
                mid,
            },
        );
        return;
    }
    // all links held: the payload streams across the whole route at the
    // narrowest per-slot rate
    let now = eng.now();
    let link_track_base = sim.ctx.map.ranks() + sim.ctx.map.nodes;
    for &l in route.links() {
        sim.rec.span(
            SpanCategory::Link,
            "link-busy",
            link_track_base + l.0,
            now,
            now + ser,
        );
    }
    eng.schedule_event(ser, Ev::RouteSerDone { route, lat, mid });
}

/// Message arrived at the receiver.
fn deliver(eng: &mut Eng, sim: &mut Sim, mid: u64) {
    let m = sim.msgs.entry(mid).or_default();
    if let Some((rank, posted_at, family)) = m.waiting.take() {
        sim.msgs.remove(&mid);
        let o = sim.ctx.intra.overhead_s.max(sim.ctx.inter.overhead_s);
        let od = SimDuration::from_secs_f64(o);
        let now = eng.now();
        // blocked-wait span: from the posted receive to delivery + overhead
        sim.rec
            .span(family.category(), "recv-wait", rank, posted_at, now + od);
        eng.schedule_event(od, Ev::Advance { rank });
    } else {
        m.arrived = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::StepProfile;
    use harborsim_hw::{CpuModel, InterconnectKind};
    use harborsim_net::{DataPath, Topology, TransportSelection};

    fn des(nodes: u32, rpn: u32, path: DataPath) -> DesEngine {
        DesEngine::new(
            NodeSpec::dual_socket(CpuModel::xeon_e5_2697v3(), 128),
            NetworkModel::compose(
                InterconnectKind::GigabitEthernet,
                TransportSelection::Native,
                path,
                Topology::small_cluster(),
            ),
            RankMap::block(nodes, rpn, 1),
            EngineConfig::default(),
        )
    }

    fn step(comm: Vec<CommPhase>) -> StepProfile {
        StepProfile {
            flops_per_rank: 1e8,
            imbalance: 1.02,
            regions: 5.0,
            comm,
        }
    }

    #[test]
    fn compute_only_job_matches_hand_calc() {
        let e = des(1, 4, DataPath::Host);
        let mut cfg = e.clone();
        cfg.config.jitter_sigma = 0.0;
        let job = JobProfile::uniform(
            StepProfile {
                flops_per_rank: 2e9,
                imbalance: 1.0,
                regions: 0.0,
                comm: vec![],
            },
            3,
        );
        let r = cfg.run(&job, 1);
        // 2 GFLOP at 2.0 GF/s = 1 s per step, 3 steps
        assert!(
            (r.elapsed.as_secs_f64() - 3.0).abs() < 1e-6,
            "elapsed={}",
            r.elapsed
        );
        assert_eq!(r.inter_node_msgs, 0);
    }

    #[test]
    fn halo_chain_runs_and_counts_messages() {
        let e = des(2, 4, DataPath::Host);
        let job = JobProfile::uniform(
            step(vec![CommPhase::Halo1D {
                bytes: 10_000,
                repeats: 2,
            }]),
            3,
        );
        let r = e.run(&job, 5);
        // chain of 8 ranks over 2 nodes: 1 cut edge -> 2 inter msgs per
        // exchange; 6 intra edges -> 12 intra msgs per exchange
        assert_eq!(r.inter_node_msgs, 2 * 2 * 3);
        assert_eq!(r.intra_node_msgs, 12 * 2 * 3);
        assert_eq!(r.inter_node_bytes, 10_000 * 12);
        assert!(r.comm.halo > SimDuration::ZERO);
    }

    #[test]
    fn allreduce_completes_for_odd_rank_counts() {
        for p in [2u32, 3, 5, 7, 12] {
            let e = des(1, p, DataPath::Host);
            let job = JobProfile::uniform(
                step(vec![CommPhase::Allreduce {
                    bytes: 8,
                    repeats: 3,
                }]),
                2,
            );
            let r = e.run(&job, 1);
            assert!(r.elapsed > SimDuration::ZERO, "p={p}");
        }
    }

    #[test]
    fn all_collective_phases_terminate() {
        let e = des(2, 5, DataPath::Host);
        let job = JobProfile::uniform(
            step(vec![
                CommPhase::Bcast { bytes: 4096 },
                CommPhase::Gather {
                    bytes_per_rank: 256,
                },
                CommPhase::Barrier,
                CommPhase::Allreduce {
                    bytes: 16,
                    repeats: 2,
                },
                CommPhase::Halo1D {
                    bytes: 1024,
                    repeats: 1,
                },
                CommPhase::Pairs {
                    pairs: vec![(0, 9), (3, 7)],
                    bytes: 2048,
                },
            ]),
            2,
        );
        let r = e.run(&job, 3);
        assert!(r.elapsed > SimDuration::ZERO);
        assert!(r.comm.other > SimDuration::ZERO);
        assert!(r.comm.pairs > SimDuration::ZERO);
    }

    #[test]
    fn rendezvous_messages_terminate() {
        // 1 MB >> eager threshold: exercises the rendezvous path
        let e = des(2, 2, DataPath::Host);
        let job = JobProfile::uniform(
            step(vec![CommPhase::Halo1D {
                bytes: 1 << 20,
                repeats: 1,
            }]),
            2,
        );
        let r = e.run(&job, 1);
        assert!(r.elapsed > SimDuration::ZERO);
        // 1 MB over 117 MB/s is ~9 ms per message; the chain has 3 edges
        assert!(r.comm.halo.as_secs_f64() > 5e-3);
    }

    #[test]
    fn deterministic_per_seed() {
        let e = des(2, 6, DataPath::Host);
        let job = JobProfile::uniform(
            step(vec![
                CommPhase::Halo1D {
                    bytes: 40_000,
                    repeats: 3,
                },
                CommPhase::Allreduce {
                    bytes: 8,
                    repeats: 5,
                },
            ]),
            4,
        );
        let a = e.run(&job, 11);
        let b = e.run(&job, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn repeated_runs_reuse_pooled_scratch() {
        let e = des(2, 4, DataPath::Host);
        let job = JobProfile::uniform(
            step(vec![CommPhase::Halo1D {
                bytes: 10_000,
                repeats: 2,
            }]),
            2,
        );
        let first = e.run(&job, 7);
        assert_eq!(e.scratch.idle(), 1, "run must return its scratch");
        for seed in 0..4 {
            let again = e.run(&job, 7);
            assert_eq!(first, again, "pooled scratch must not leak state");
            let _ = e.run(&job, seed); // interleave other seeds
        }
        assert_eq!(e.scratch.idle(), 1);
    }

    #[test]
    fn docker_bridge_slows_everything() {
        let job = JobProfile::uniform(
            step(vec![
                CommPhase::Halo1D {
                    bytes: 40_000,
                    repeats: 5,
                },
                CommPhase::Allreduce {
                    bytes: 8,
                    repeats: 10,
                },
            ]),
            3,
        );
        let host = des(2, 8, DataPath::Host).run(&job, 1);
        let dock = des(2, 8, DataPath::docker_default_bridge()).run(&job, 1);
        assert!(
            dock.elapsed.as_secs_f64() > 1.05 * host.elapsed.as_secs_f64(),
            "docker {} vs host {}",
            dock.elapsed,
            host.elapsed
        );
    }

    #[test]
    fn halo3d_terminates_and_counts() {
        use crate::workload::factor3;
        let e = des(2, 4, DataPath::Host); // 8 ranks -> 2x2x2 grid
        let dims = factor3(8);
        let job = JobProfile::uniform(
            step(vec![CommPhase::Halo3D {
                dims,
                bytes: 5_000,
                repeats: 2,
            }]),
            3,
        );
        let r = e.run(&job, 1);
        // 2x2x2 grid: every rank has 3 neighbours -> 24 directed msgs per
        // exchange, x-neighbours (12 msgs) intra under block mapping of 4/node
        assert_eq!(r.inter_node_msgs + r.intra_node_msgs, 24 * 2 * 3);
        assert!(r.inter_node_msgs > 0 && r.intra_node_msgs > 0);
    }

    #[test]
    fn ring_allreduce_terminates() {
        let mut e = des(1, 6, DataPath::Host);
        e.config.allreduce_algo = AllreduceAlgo::Ring;
        let job = JobProfile::uniform(
            step(vec![CommPhase::Allreduce {
                bytes: 6000,
                repeats: 1,
            }]),
            1,
        );
        let r = e.run(&job, 1);
        assert!(r.elapsed > SimDuration::ZERO);
    }

    #[test]
    fn rabenseifner_terminates() {
        let mut e = des(2, 4, DataPath::Host);
        e.config.allreduce_algo = AllreduceAlgo::Rabenseifner;
        let job = JobProfile::uniform(
            step(vec![CommPhase::Allreduce {
                bytes: 4096,
                repeats: 2,
            }]),
            2,
        );
        let r = e.run(&job, 1);
        assert!(r.elapsed > SimDuration::ZERO);
    }
}
