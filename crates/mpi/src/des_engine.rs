//! The message-level discrete-event performance engine, shard-parallel.
//!
//! Every point-to-point message and every collective round of the workload
//! becomes simulated wire traffic:
//!
//! - each rank is a little interpreter over its private instruction stream
//!   (compute / send / recv), generated lazily from the [`JobProfile`];
//! - sends are *posted* (Isend semantics): the rank pays the per-message CPU
//!   overhead and moves on, while the payload claims the links of its
//!   route — node uplink, spine crossing, receiver downlink — as FIFO
//!   [`CoreResource`]s carved into node-stream slots, the same routed graph
//!   the analytic engine costs with its fluid schedule;
//! - intra-node messages serialize through a per-node memory/bridge pipe;
//! - messages above the eager threshold use a rendezvous handshake: the
//!   payload may only enter the NIC once the receiver has posted the
//!   matching receive and a request/ack round-trip has elapsed;
//! - receives block the rank until arrival (+ receive overhead).
//!
//! # Sharding
//!
//! The simulation is partitioned by *domain* — the leaf group of the fabric
//! ([`LinkGraph::leaf_of`](harborsim_net::LinkGraph::leaf_of)) — and domains
//! are dealt out to shards as contiguous blocks. Each shard owns a private
//! [`EventCore`] (slab + keyed heap + clock), the rank interpreters, link /
//! pipe / bridge resources, and message table of its domains; nothing it
//! touches is shared. All intra-domain protocol (same node, same leaf) is
//! the exact serial state machine. Cross-leaf traffic crosses shards over
//! three typed mailbox events, each carrying at least the *lookahead*
//! `λ = latency + min(3·hop, 2·overhead)` of simulated delay:
//!
//! - `SegArrive` — the payload finished its source-side segment (node-up +
//!   leaf-up held for `h0`) and hops to the destination leaf, where it
//!   claims leaf-down + node-down for `h1`; `h0 + h1` equals the full
//!   serialization time, split by inverse segment rate so a degraded
//!   uplink still dominates.
//! - `RdvProbe` / `RdvGrant` — the rendezvous handshake as an explicit
//!   request/ack pair so the receiver's message table stays receiver-local.
//!
//! Shards run conservatively synchronized windows: agree on the global
//! minimum pending time `M`, process events strictly below `M + λ`, flush
//! outboxes, repeat. Determinism does not depend on thread timing: every
//! event is keyed `(time, scheduling domain, per-domain sequence)`, a pure
//! function of the (deterministic) per-domain schedule order, so the
//! per-domain pop order — and with it every result and span — is identical
//! for *any* shard count. `tests/shards_differential.rs` pins serial vs
//! sharded bit-equality; `shards = 1` (the default) skips threads and
//! barriers entirely.
//!
//! Event payloads are `Copy` values in per-shard slab arenas; instruction
//! queues, resources, and tallies live in pooled `DesScratch` reused across
//! runs, so the steady-state event loop of `plan.execute(seed)` performs no
//! heap allocation.
//!
//! The engine is deterministic for a given seed and cross-validated against
//! the analytic engine in `tests/engines_agree.rs`.

use crate::analytic::EngineConfig;
use crate::collectives::{log2_rounds, AllreduceAlgo};
use crate::mapping::{route_table, RankMap};
use crate::result::{CommBreakdown, LinkUsage, SimResult};
use crate::workload::{CommPhase, JobProfile};
use harborsim_des::trace::{Recorder, SpanCategory};
use harborsim_des::{CoreResource, EventCore, RngStream, SimDuration, SimTime};
use harborsim_hw::NodeSpec;
use harborsim_net::{LinkId, NetworkModel, Route, RouteTable, ScratchPool, TransportParams};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Communication family, for wait-time attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Family {
    Halo,
    Allreduce,
    Pairs,
    Other,
}

impl Family {
    fn category(self) -> SpanCategory {
        match self {
            Family::Halo => SpanCategory::Halo,
            Family::Allreduce => SpanCategory::Allreduce,
            Family::Pairs => SpanCategory::Pairs,
            Family::Other => SpanCategory::Other,
        }
    }
}

/// One primitive instruction of a rank's stream.
#[derive(Debug, Clone)]
enum PrimOp {
    /// Busy for this many seconds.
    Compute(f64),
    /// Post a message (Isend): pay overhead, enqueue payload, continue.
    Send { dst: u32, bytes: u64, mid: u64 },
    /// Block until message `mid` from `src` has arrived. (`src` is implied
    /// by `mid`; kept for trace readability when debugging expansions.)
    Recv {
        #[allow(dead_code)]
        src: u32,
        mid: u64,
        family: Family,
    },
}

/// Deterministic directed-message id: both endpoints derive the same id
/// from what they know locally.
fn match_id(uid: u64, round: u32, rep: u32, src: u32, dst: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in [uid, round as u64, rep as u64, src as u64, dst as u64] {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        h ^= h >> 29;
    }
    h
}

/// Program-position cursor of one rank.
#[derive(Debug, Clone, Default)]
struct Cursor {
    block: usize,
    rep: u32,
    item: usize, // 0 = compute, 1.. = comm phase index + 1
}

struct RankState {
    queue: VecDeque<PrimOp>,
    cursor: Cursor,
    rng: RngStream,
    finished: bool,
}

#[derive(Default)]
struct MsgState {
    arrived: bool,
    /// Rank blocked on this message, with post time and family.
    waiting: Option<(u32, SimTime, Family)>,
    recv_posted: bool,
    /// Sender parked waiting for the rendezvous partner.
    rdv_sender: Option<(u32, u32, u64)>,
}

/// Shared immutable job context.
struct JobCtx {
    job: JobProfile,
    map: RankMap,
    node: NodeSpec,
    inter: TransportParams,
    intra: TransportParams,
    /// Serialized per-message bridge cost (Docker), 0 on host networking.
    bridge_serial_s: f64,
    config: EngineConfig,
    routes: Arc<RouteTable>,
    /// Per-slot drain rate of each link (bytes/s), dense by link id.
    link_rate: Arc<[f64]>,
    /// Owning shard of each domain (leaf group), dense by leaf id.
    shard_of_domain: Box<[u32]>,
}

impl JobCtx {
    /// The domain (leaf group) that owns `rank`'s protocol state.
    #[inline]
    fn domain_of_rank(&self, rank: u32) -> u32 {
        self.routes.graph().leaf_of(self.map.node_of(rank))
    }

    #[inline]
    fn domain_of_node(&self, node: u32) -> u32 {
        self.routes.graph().leaf_of(node)
    }

    #[inline]
    fn same_domain(&self, a: u32, b: u32) -> bool {
        self.domain_of_rank(a) == self.domain_of_rank(b)
    }

    /// The domain whose shard must process `ev`. Every resource and every
    /// message-table entry is touched by exactly one domain: node links and
    /// pipes by their node's leaf, leaf links by their own leaf, message
    /// state by the *receiver's* leaf.
    fn domain_of_ev(&self, ev: &Ev) -> u32 {
        match *ev {
            Ev::Advance { rank } => self.domain_of_rank(rank),
            Ev::Transfer { src, .. } => self.domain_of_rank(src),
            Ev::BridgeGranted { node, .. }
            | Ev::BridgeDone { node, .. }
            | Ev::PipeGranted { node, .. }
            | Ev::PipeSerDone { node, .. } => self.domain_of_node(node),
            Ev::RouteGranted { dst, .. } | Ev::RouteSerDone { dst, .. } => self.domain_of_rank(dst),
            Ev::SegGranted { src, dst, seg, .. } | Ev::SegSerDone { src, dst, seg, .. } => {
                if seg == 0 {
                    self.domain_of_rank(src)
                } else {
                    self.domain_of_rank(dst)
                }
            }
            Ev::SegArrive { dst, .. } => self.domain_of_rank(dst),
            Ev::RdvProbe { dst, .. } => self.domain_of_rank(dst),
            Ev::RdvGrant { src, .. } => self.domain_of_rank(src),
            Ev::Deliver { dst, .. } => self.domain_of_rank(dst),
        }
    }
}

/// The protocol state machine as a typed, `Copy` event payload. Intra-leaf
/// variants are 1:1 with the serial implementation; `Seg*` and `Rdv*` carry
/// cross-leaf traffic between shards.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Drive `rank`'s interpreter forward.
    Advance { rank: u32 },
    /// Rendezvous handshake finished: move the payload onto the node path.
    Transfer {
        src: u32,
        dst: u32,
        bytes: u64,
        mid: u64,
    },
    /// The node's serialized bridge granted one message slot.
    BridgeGranted {
        node: u32,
        src: u32,
        dst: u32,
        bytes: u64,
        mid: u64,
    },
    /// The bridge hold elapsed: release it and hit the wire.
    BridgeDone {
        node: u32,
        src: u32,
        dst: u32,
        bytes: u64,
        mid: u64,
    },
    /// The intra-node pipe granted; hold it for the serialization time.
    PipeGranted {
        node: u32,
        dst: u32,
        ser: SimDuration,
        lat: SimDuration,
        mid: u64,
    },
    /// Payload fully through the pipe: release, then deliver after latency.
    PipeSerDone {
        node: u32,
        dst: u32,
        lat: SimDuration,
        mid: u64,
    },
    /// Link `idx - 1` of a same-leaf route granted; claim the next one.
    RouteGranted {
        route: Route,
        idx: u8,
        ser: SimDuration,
        lat: SimDuration,
        dst: u32,
        mid: u64,
    },
    /// Payload streamed across all held links: release them, deliver later.
    RouteSerDone {
        route: Route,
        lat: SimDuration,
        dst: u32,
        mid: u64,
    },
    /// Link `idx - 1` of a cross-leaf segment granted; claim the next one.
    /// `seg` 0 holds node-up + leaf-up at the source leaf, `seg` 1 holds
    /// leaf-down + node-down at the destination leaf.
    SegGranted {
        src: u32,
        dst: u32,
        bytes: u64,
        seg: u8,
        idx: u8,
        mid: u64,
    },
    /// A segment's hold elapsed: release its links; segment 0 hops across
    /// the spine, segment 1 delivers.
    SegSerDone {
        src: u32,
        dst: u32,
        bytes: u64,
        seg: u8,
        mid: u64,
    },
    /// Cross-leaf payload reached the destination leaf (mailbox event,
    /// carries the full transport + switch latency).
    SegArrive {
        src: u32,
        dst: u32,
        bytes: u64,
        mid: u64,
    },
    /// Cross-leaf rendezvous request at the receiver's leaf (mailbox).
    RdvProbe {
        src: u32,
        dst: u32,
        bytes: u64,
        mid: u64,
        sent_at: SimTime,
    },
    /// Cross-leaf rendezvous ack back at the sender's leaf (mailbox);
    /// `sent_at` anchors the handshake span on the sender's track.
    RdvGrant {
        src: u32,
        dst: u32,
        bytes: u64,
        mid: u64,
        sent_at: SimTime,
    },
    /// Message arrived at the receiver.
    Deliver { dst: u32, mid: u64 },
}

/// Domain bits of the event key tie-breaker; 40 bits of per-domain
/// sequence below, 24 bits of domain above.
const DOMAIN_SHIFT: u32 = 40;
const SEQ_MASK: u64 = (1 << DOMAIN_SHIFT) - 1;

/// One shard's complete working state. Vectors are full-length and
/// globally indexed (rank, node, link id) — each shard only ever touches
/// the entries its domains own, and full-length indexing keeps every code
/// path identical to the serial engine.
struct ShardSim {
    id: u32,
    ctx: Arc<JobCtx>,
    core: EventCore<Ev>,
    ranks: Vec<RankState>,
    /// One FIFO resource per fabric link, `capacity / node-stream` slots each.
    links: Vec<CoreResource<Ev>>,
    pipes: Vec<CoreResource<Ev>>,
    bridges: Vec<CoreResource<Ev>>,
    msgs: HashMap<u64, MsgState>,
    /// Per-domain schedule counters — the event key tie-breakers.
    dseq: Vec<u64>,
    /// Domain of the event currently firing; keys every schedule it makes.
    cause: u32,
    live_ranks: u32,
    events: u64,
    inter_msgs: u64,
    intra_msgs: u64,
    inter_bytes: u64,
    /// Integer per-link byte tallies (summed across shards; `busy_s` is
    /// derived by one division at the end so f64 accumulation order can
    /// never differ between shard layouts).
    link_bytes: Vec<u64>,
    /// Cross-shard sends staged during a window, flushed at its end.
    outboxes: Vec<Vec<(u128, Ev)>>,
    /// Trace sink; compute/wait attribution is derived from it after the run.
    rec: Recorder,
}

impl ShardSim {
    #[inline]
    fn now(&self) -> SimTime {
        self.core.now()
    }

    /// Schedule `ev` after `d`, keyed by the firing domain and its schedule
    /// counter. Cross-shard targets go to the outbox instead of the heap.
    fn sched_after(&mut self, d: SimDuration, ev: Ev) {
        let at = self.now() + d;
        let seq = self.dseq[self.cause as usize];
        self.dseq[self.cause as usize] = seq + 1;
        debug_assert!(seq <= SEQ_MASK, "per-domain schedule counter overflow");
        let tie = ((self.cause as u64) << DOMAIN_SHIFT) | (seq & SEQ_MASK);
        let target = self.ctx.domain_of_ev(&ev);
        let shard = self.ctx.shard_of_domain[target as usize];
        if shard == self.id {
            self.core.schedule_keyed(at, tie, ev);
        } else {
            let key = ((at.0 as u128) << 64) | tie as u128;
            self.outboxes[shard as usize].push((key, ev));
        }
    }

    fn release_link(&mut self, l: LinkId) {
        if let Some(ev) = self.links[l.index()].release() {
            self.sched_after(SimDuration::ZERO, ev);
        }
    }

    fn release_pipe(&mut self, node: u32) {
        if let Some(ev) = self.pipes[node as usize].release() {
            self.sched_after(SimDuration::ZERO, ev);
        }
    }

    fn release_bridge(&mut self, node: u32) {
        if let Some(ev) = self.bridges[node as usize].release() {
            self.sched_after(SimDuration::ZERO, ev);
        }
    }
}

fn fire(sim: &mut ShardSim, ev: Ev) {
    match ev {
        Ev::Advance { rank } => advance(sim, rank),
        Ev::Transfer {
            src,
            dst,
            bytes,
            mid,
        } => enqueue_transfer(sim, src, dst, bytes, mid),
        Ev::BridgeGranted {
            node,
            src,
            dst,
            bytes,
            mid,
        } => {
            let hold = SimDuration::from_secs_f64(sim.ctx.bridge_serial_s);
            // bridge tracks sit above the rank tracks: ranks + node
            let track = sim.ctx.map.ranks() + node;
            let t0 = sim.now();
            sim.rec.span(
                SpanCategory::Bridge,
                "bridge-serialization",
                track,
                t0,
                t0 + hold,
            );
            sim.sched_after(
                hold,
                Ev::BridgeDone {
                    node,
                    src,
                    dst,
                    bytes,
                    mid,
                },
            );
        }
        Ev::BridgeDone {
            node,
            src,
            dst,
            bytes,
            mid,
        } => {
            sim.release_bridge(node);
            enqueue_transfer_wire(sim, src, dst, bytes, mid);
        }
        Ev::PipeGranted {
            node,
            dst,
            ser,
            lat,
            mid,
        } => {
            // hold the pipe for the serialization time
            sim.sched_after(
                ser,
                Ev::PipeSerDone {
                    node,
                    dst,
                    lat,
                    mid,
                },
            );
        }
        Ev::PipeSerDone {
            node,
            dst,
            lat,
            mid,
        } => {
            sim.release_pipe(node);
            // payload fully through; delivery after the latency
            sim.sched_after(lat, Ev::Deliver { dst, mid });
        }
        Ev::RouteGranted {
            route,
            idx,
            ser,
            lat,
            dst,
            mid,
        } => acquire_route(sim, route, idx as usize, ser, lat, dst, mid),
        Ev::RouteSerDone {
            route,
            lat,
            dst,
            mid,
        } => {
            for &l in route.links() {
                sim.release_link(l);
            }
            // payload fully on the wire; delivery after transport +
            // switch latency
            sim.sched_after(lat, Ev::Deliver { dst, mid });
        }
        Ev::SegGranted {
            src,
            dst,
            bytes,
            seg,
            idx,
            mid,
        } => acquire_seg(sim, src, dst, bytes, seg, idx as usize, mid),
        Ev::SegSerDone {
            src,
            dst,
            bytes,
            seg,
            mid,
        } => {
            let route = sim.ctx.routes.route(src, dst);
            let (lo, hi) = if seg == 0 { (0, 2) } else { (2, 4) };
            for &l in &route.links()[lo..hi] {
                sim.release_link(l);
            }
            if seg == 0 {
                // hop to the destination leaf: transport + switch latency
                let t = sim.ctx.inter;
                let lat = SimDuration::from_secs_f64(t.latency_s + route.latency_s());
                sim.sched_after(
                    lat,
                    Ev::SegArrive {
                        src,
                        dst,
                        bytes,
                        mid,
                    },
                );
            } else {
                deliver(sim, mid);
            }
        }
        Ev::SegArrive {
            src,
            dst,
            bytes,
            mid,
        } => acquire_seg(sim, src, dst, bytes, 1, 2, mid),
        Ev::RdvProbe {
            src,
            dst,
            bytes,
            mid,
            sent_at,
        } => {
            let m = sim.msgs.entry(mid).or_default();
            if m.recv_posted {
                // receiver ready: ack back to the sender's leaf
                let t = sim.ctx.inter;
                let g = SimDuration::from_secs_f64(t.latency_s + 2.0 * t.overhead_s);
                sim.sched_after(
                    g,
                    Ev::RdvGrant {
                        src,
                        dst,
                        bytes,
                        mid,
                        sent_at,
                    },
                );
            } else {
                m.rdv_sender = Some((src, dst, bytes));
            }
        }
        Ev::RdvGrant {
            src,
            dst,
            bytes,
            mid,
            sent_at,
        } => {
            let now = sim.now();
            sim.rec.span(
                SpanCategory::Protocol,
                "rendezvous-handshake",
                src,
                sent_at,
                now,
            );
            enqueue_transfer(sim, src, dst, bytes, mid);
        }
        Ev::Deliver { dst: _, mid } => deliver(sim, mid),
    }
}

/// Per-shard pooled working state.
#[derive(Default)]
struct ShardScratch {
    core: EventCore<Ev>,
    ranks: Vec<RankState>,
    links: Vec<CoreResource<Ev>>,
    pipes: Vec<CoreResource<Ev>>,
    bridges: Vec<CoreResource<Ev>>,
    msgs: HashMap<u64, MsgState>,
    link_bytes: Vec<u64>,
    dseq: Vec<u64>,
    outboxes: Vec<Vec<(u128, Ev)>>,
}

impl ShardScratch {
    #[allow(clippy::too_many_arguments)]
    fn reset(
        &mut self,
        p: u32,
        root: &RngStream,
        slots: &[u32],
        nodes: u32,
        nlinks: usize,
        domains: u32,
        shards: usize,
    ) {
        self.core.reset();
        self.ranks.truncate(p as usize);
        for (r, rs) in self.ranks.iter_mut().enumerate() {
            rs.queue.clear();
            rs.cursor = Cursor::default();
            rs.rng = root.derive_idx(r as u64);
            rs.finished = false;
        }
        for r in self.ranks.len() as u64..p as u64 {
            self.ranks.push(RankState {
                queue: VecDeque::new(),
                cursor: Cursor::default(),
                rng: root.derive_idx(r),
                finished: false,
            });
        }
        if self.links.len() == slots.len() {
            for (res, &s) in self.links.iter_mut().zip(slots) {
                res.reset(s);
            }
        } else {
            self.links.clear();
            self.links
                .extend(slots.iter().map(|&s| CoreResource::new(s)));
        }
        for pool in [&mut self.pipes, &mut self.bridges] {
            if pool.len() == nodes as usize {
                for res in pool.iter_mut() {
                    res.reset(1);
                }
            } else {
                pool.clear();
                pool.extend((0..nodes).map(|_| CoreResource::new(1)));
            }
        }
        self.msgs.clear();
        self.link_bytes.clear();
        self.link_bytes.resize(nlinks, 0);
        self.dseq.clear();
        self.dseq.resize(domains as usize, 0);
        for ob in &mut self.outboxes {
            ob.clear();
        }
        self.outboxes.resize_with(shards, Vec::new);
        self.outboxes.truncate(shards);
    }
}

/// Pooled across `run_traced` calls so a cached plan's execute-many loop
/// reuses every allocation: per-shard event arenas and heaps, rank
/// instruction queues, link/pipe/bridge resources, message tables, and
/// per-link tally vectors.
#[derive(Default)]
struct DesScratch {
    shards: Vec<ShardScratch>,
}

/// Sense-reversing spinning barrier. Waiters yield to the scheduler, so
/// gang-scheduled shard threads make progress even with fewer cores than
/// shards (time-slicing, not deadlock).
struct SpinBarrier {
    n: u32,
    count: AtomicU32,
    generation: AtomicU32,
}

impl SpinBarrier {
    fn new(n: usize) -> SpinBarrier {
        SpinBarrier {
            n: n as u32,
            count: AtomicU32::new(0),
            generation: AtomicU32::new(0),
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            while self.generation.load(Ordering::Acquire) == gen {
                std::thread::yield_now();
            }
        }
    }
}

/// Shared window-synchronization state of one multi-shard run.
struct WindowSync {
    barrier: SpinBarrier,
    /// Each shard's minimum pending event time (ns; `u64::MAX` = empty).
    mins: Vec<AtomicU64>,
    /// Cross-shard mailboxes, indexed by receiving shard.
    inboxes: Vec<Mutex<Vec<(u128, Ev)>>>,
    /// Events strictly within `M + horizon_ns` are safe to process —
    /// `horizon_ns` is the lookahead minus a nanosecond of rounding margin.
    horizon_ns: u64,
}

/// Conservative synchronous-window loop of one shard.
fn drive_windowed(sim: &mut ShardSim, sync: &WindowSync) {
    loop {
        // A: every shard has flushed its previous window's outboxes
        sync.barrier.wait();
        {
            let mut inbox = sync.inboxes[sim.id as usize].lock().unwrap();
            for (key, ev) in inbox.drain(..) {
                sim.core
                    .schedule_keyed(SimTime((key >> 64) as u64), key as u64, ev);
            }
        }
        let min = sim.core.min_time().map_or(u64::MAX, |t| t.0);
        sync.mins[sim.id as usize].store(min, Ordering::Release);
        // B: every shard has published its minimum; the array is stable
        // until the next A because minima are only written between A and B
        sync.barrier.wait();
        let m = sync
            .mins
            .iter()
            .map(|a| a.load(Ordering::Acquire))
            .min()
            .expect("at least one shard");
        if m == u64::MAX {
            return;
        }
        let horizon = SimTime(m.saturating_add(sync.horizon_ns));
        while let Some(ev) = sim.core.pop_within(horizon) {
            sim.events += 1;
            sim.cause = sim.ctx.domain_of_ev(&ev);
            fire(sim, ev);
        }
        for dst in 0..sim.outboxes.len() {
            if !sim.outboxes[dst].is_empty() {
                let mut inbox = sync.inboxes[dst].lock().unwrap();
                let ob = &mut sim.outboxes[dst];
                inbox.append(ob);
            }
        }
    }
}

/// The message-level engine.
#[derive(Debug, Clone)]
pub struct DesEngine {
    /// Node hardware.
    pub node: NodeSpec,
    /// Effective network model.
    pub network: NetworkModel,
    /// Rank placement.
    pub map: RankMap,
    /// Engine knobs (shared type with the analytic engine).
    pub config: EngineConfig,
    /// Requested shard count. Clamped to the number of fabric leaves at run
    /// time (a single-switch fabric always runs serial), and forced to 1
    /// when the transport's lookahead vanishes. `1` — the default — runs
    /// the loop inline with no threads or barriers.
    pub shards: u32,
    routes: Arc<RouteTable>,
    /// Per-link slot counts, precomputed once per engine.
    slots: Arc<[u32]>,
    /// Per-slot drain rate of each link (bytes/s), precomputed once.
    link_rate: Arc<[f64]>,
    scratch: ScratchPool<DesScratch>,
}

impl DesEngine {
    /// Build an engine, deriving the route table from the placement and
    /// network. Prefer [`DesEngine::with_routes`] when another engine shares
    /// the same plan — the table is built once per plan, not per engine.
    pub fn new(
        node: NodeSpec,
        network: NetworkModel,
        map: RankMap,
        config: EngineConfig,
    ) -> DesEngine {
        let routes = Arc::new(route_table(&map, &network));
        DesEngine::with_routes(node, network, map, config, routes)
    }

    /// Build an engine over an already-built route table.
    pub fn with_routes(
        node: NodeSpec,
        network: NetworkModel,
        map: RankMap,
        config: EngineConfig,
        routes: Arc<RouteTable>,
    ) -> DesEngine {
        assert_eq!(
            routes.ranks(),
            map.ranks(),
            "route table must match placement"
        );
        // each link is carved into slots of the node stream rate: a node
        // uplink is one slot (one kernel-fed wire), a healthy leaf uplink is
        // taper × nodes_per_leaf slots — messages serialize only where the
        // fabric is actually narrower than the offered streams
        let graph = routes.graph();
        let stream = network.inter.bandwidth_bps.min(network.nic_bw_bps);
        let mut slots = Vec::with_capacity(graph.len());
        let mut link_rate = Vec::with_capacity(graph.len());
        for i in 0..graph.len() {
            let cap = graph.capacity_bps(LinkId(i as u32));
            let s = ((cap / stream).floor() as u32).max(1);
            slots.push(s);
            link_rate.push(cap / s as f64);
        }
        DesEngine {
            node,
            network,
            map,
            config,
            shards: 1,
            routes,
            slots: slots.into(),
            link_rate: link_rate.into(),
            scratch: ScratchPool::new(),
        }
    }

    /// The same engine with a different requested shard count.
    pub fn with_shards(mut self, shards: u32) -> DesEngine {
        self.shards = shards;
        self
    }

    /// The route table all inter-node traffic flows over.
    pub fn routes(&self) -> &Arc<RouteTable> {
        &self.routes
    }

    /// The smallest simulated delay any cross-leaf (and therefore any
    /// cross-shard) event carries, in nanoseconds: the transport latency
    /// plus the lesser of the spine crossing (3 switch hops) and the
    /// rendezvous request/ack CPU legs (2 overheads).
    fn lookahead_ns(&self) -> u64 {
        let t = self.network.inter;
        let hop = self.routes.graph().hop_latency_s();
        let floor = t.latency_s + (3.0 * hop).min(2.0 * t.overhead_s);
        SimDuration::from_secs_f64(floor).0
    }

    /// The shard count a run would actually use for this engine.
    pub fn effective_shards(&self) -> u32 {
        let domains = self.routes.graph().leaves();
        let s = self.shards.max(1).min(domains);
        // without at least 3 ns of lookahead there is no usable window
        // beyond the margin; fall back to the serial loop
        if s > 1 && self.lookahead_ns() < 3 {
            1
        } else {
            s
        }
    }

    /// Execute `job`, simulating every message. `seed` drives compute
    /// jitter. Cost is `O(total messages · log pending-events)`.
    pub fn run(&self, job: &JobProfile, seed: u64) -> SimResult {
        self.run_traced(job, seed, &mut Recorder::aggregating())
    }

    /// Execute `job`, emitting per-rank compute / wait / protocol / bridge /
    /// link spans through `rec` (one track per rank; bridge tracks at
    /// `ranks..ranks+nodes`, link tracks above those). The `compute` and
    /// `comm` attribution in the returned [`SimResult`] is *derived from*
    /// the recorded spans; with a disabled recorder `elapsed` and the
    /// traffic counters are still exact but the attribution comes out zero.
    pub fn run_traced(&self, job: &JobProfile, seed: u64, rec: &mut Recorder) -> SimResult {
        self.run_counted(job, seed, rec).0
    }

    /// [`DesEngine::run_traced`], also returning the number of events the
    /// run fired across all shards — the unit the throughput benchmarks
    /// report as events/s.
    pub fn run_counted(&self, job: &JobProfile, seed: u64, rec: &mut Recorder) -> (SimResult, u64) {
        let p = self.map.ranks();
        let graph = self.routes.graph();
        let domains = graph.leaves();
        let shards = self.effective_shards() as usize;
        let shard_of_domain = partition_domains(domains, shards as u32);
        let root = RngStream::new(seed).derive("des-run");
        let ctx = Arc::new(JobCtx {
            job: job.clone(),
            map: self.map,
            node: self.node.clone(),
            inter: self.network.inter,
            intra: self.network.intra,
            bridge_serial_s: self.network.node_serialized_per_msg_s,
            config: self.config.clone(),
            routes: self.routes.clone(),
            link_rate: self.link_rate.clone(),
            shard_of_domain,
        });

        let mut scratch = self
            .scratch
            .take()
            .unwrap_or_else(|| Box::new(DesScratch::default()));
        scratch.shards.resize_with(shards, ShardScratch::default);
        scratch.shards.truncate(shards);
        let mut sims: Vec<ShardSim> = scratch
            .shards
            .iter_mut()
            .enumerate()
            .map(|(id, sc)| {
                sc.reset(
                    p,
                    &root,
                    &self.slots,
                    self.map.nodes,
                    graph.len(),
                    domains,
                    shards,
                );
                let mut local = Recorder::like(rec);
                local.declare_tracks(p);
                ShardSim {
                    id: id as u32,
                    ctx: ctx.clone(),
                    core: std::mem::take(&mut sc.core),
                    ranks: std::mem::take(&mut sc.ranks),
                    links: std::mem::take(&mut sc.links),
                    pipes: std::mem::take(&mut sc.pipes),
                    bridges: std::mem::take(&mut sc.bridges),
                    msgs: std::mem::take(&mut sc.msgs),
                    dseq: std::mem::take(&mut sc.dseq),
                    cause: 0,
                    live_ranks: 0,
                    events: 0,
                    inter_msgs: 0,
                    intra_msgs: 0,
                    inter_bytes: 0,
                    link_bytes: std::mem::take(&mut sc.link_bytes),
                    outboxes: std::mem::take(&mut sc.outboxes),
                    rec: local,
                }
            })
            .collect();

        // seed the interpreters in global rank order, so every domain's
        // schedule counter assigns the same keys at every shard count
        for r in 0..p {
            let dom = ctx.domain_of_rank(r);
            let sim = &mut sims[ctx.shard_of_domain[dom as usize] as usize];
            sim.live_ranks += 1;
            sim.cause = dom;
            sim.sched_after(SimDuration::ZERO, Ev::Advance { rank: r });
        }

        if shards == 1 {
            let sim = &mut sims[0];
            while let Some(ev) = sim.core.pop_within(SimTime::MAX) {
                sim.events += 1;
                sim.cause = sim.ctx.domain_of_ev(&ev);
                fire(sim, ev);
            }
        } else {
            let sync = WindowSync {
                barrier: SpinBarrier::new(shards),
                mins: (0..shards).map(|_| AtomicU64::new(0)).collect(),
                inboxes: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
                horizon_ns: self.lookahead_ns() - 2,
            };
            let sync = &sync;
            sims = harborsim_par::gang(sims, |mut sim| {
                drive_windowed(&mut sim, sync);
                sim
            });
        }

        let mut local = Recorder::like(rec);
        local.declare_tracks(p);
        let mut live = 0u32;
        let mut events = 0u64;
        let mut elapsed = SimTime::ZERO;
        let mut inter_msgs = 0u64;
        let mut intra_msgs = 0u64;
        let mut inter_bytes = 0u64;
        let mut link_bytes = vec![0u64; graph.len()];
        for (sim, sc) in sims.into_iter().zip(scratch.shards.iter_mut()) {
            live += sim.live_ranks;
            events += sim.events;
            elapsed = elapsed.max(sim.now());
            inter_msgs += sim.inter_msgs;
            intra_msgs += sim.intra_msgs;
            inter_bytes += sim.inter_bytes;
            for (total, &b) in link_bytes.iter_mut().zip(&sim.link_bytes) {
                *total += b;
            }
            local.merge(sim.rec);
            // hand the working state back for the next run
            sc.core = sim.core;
            sc.ranks = sim.ranks;
            sc.links = sim.links;
            sc.pipes = sim.pipes;
            sc.bridges = sim.bridges;
            sc.msgs = sim.msgs;
            sc.link_bytes = sim.link_bytes;
            sc.dseq = sim.dseq;
            sc.outboxes = sim.outboxes;
        }
        assert_eq!(live, 0, "ranks deadlocked: {live} still live");

        let links = if inter_bytes > 0 {
            (0..graph.len())
                .map(|i| {
                    let id = LinkId(i as u32);
                    LinkUsage {
                        label: graph.label(id),
                        busy_s: link_bytes[i] as f64 / graph.capacity_bps(id),
                        bytes: link_bytes[i],
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        let result = SimResult {
            elapsed: elapsed - SimTime::ZERO,
            compute: local.rollup().max_track(SpanCategory::Compute),
            comm: CommBreakdown::from_trace(local.rollup()),
            inter_node_msgs: inter_msgs,
            intra_node_msgs: intra_msgs,
            inter_node_bytes: inter_bytes,
            links,
            engine: "des",
        };
        rec.merge(local);
        self.scratch.put(scratch);
        (result, events)
    }
}

/// Deal `domains` leaves to `shards` shards as contiguous blocks, the
/// first `domains % shards` shards holding one extra.
fn partition_domains(domains: u32, shards: u32) -> Box<[u32]> {
    let base = domains / shards;
    let rem = domains % shards;
    let mut owner = Vec::with_capacity(domains as usize);
    for s in 0..shards {
        let n = base + u32::from(s < rem);
        owner.extend(std::iter::repeat_n(s, n as usize));
    }
    owner.into_boxed_slice()
}

/// Refill `rank`'s instruction queue from the next program item, pushing
/// directly into the rank's (pooled) queue. Returns `false` when the
/// program is exhausted.
fn refill(sim: &mut ShardSim, rank: u32) -> bool {
    let ctx = sim.ctx.clone();
    let p = ctx.map.ranks();
    loop {
        let cur = sim.ranks[rank as usize].cursor.clone();
        let Some((step, reps)) = ctx.job.steps.get(cur.block) else {
            return false;
        };
        if cur.rep >= *reps {
            let rs = &mut sim.ranks[rank as usize];
            rs.cursor.block += 1;
            rs.cursor.rep = 0;
            rs.cursor.item = 0;
            continue;
        }
        // uid identifying (block, rep): phases add their index
        let uid = ((cur.block as u64) << 40) | ((cur.rep as u64) << 8);
        if cur.item == 0 {
            // compute item
            sim.ranks[rank as usize].cursor.item = 1;
            if step.flops_per_rank > 0.0 {
                let rs = &mut sim.ranks[rank as usize];
                let shape = 1.0 + (step.imbalance - 1.0) * rs.rng.uniform();
                let jitter = rs.rng.lognormal_factor(ctx.config.jitter_sigma);
                let flops = step.flops_per_rank * shape * ctx.config.compute_tax;
                let secs =
                    ctx.node
                        .rank_compute_seconds(flops, ctx.map.threads_per_rank, step.regions)
                        * jitter;
                rs.queue.push_back(PrimOp::Compute(secs));
                return true;
            }
            continue;
        }
        let phase_idx = cur.item - 1;
        if phase_idx >= step.comm.len() {
            let rs = &mut sim.ranks[rank as usize];
            rs.cursor.rep += 1;
            rs.cursor.item = 0;
            continue;
        }
        sim.ranks[rank as usize].cursor.item += 1;
        let uid = uid | (phase_idx as u64 + 1);
        let queue = &mut sim.ranks[rank as usize].queue;
        let before = queue.len();
        expand_phase(&ctx, rank, p, &step.comm[phase_idx], uid, queue);
        if queue.len() > before {
            return true;
        }
    }
}

/// Emit `rank`'s instructions for one communication phase.
fn expand_phase(
    ctx: &JobCtx,
    rank: u32,
    p: u32,
    phase: &CommPhase,
    uid: u64,
    ops: &mut VecDeque<PrimOp>,
) {
    if p <= 1 {
        return;
    }
    let r = rank;
    match phase {
        CommPhase::Halo1D { bytes, repeats } => {
            let left = r.checked_sub(1);
            let right = (r + 1 < p).then_some(r + 1);
            for k in 0..*repeats {
                for nb in [left, right].into_iter().flatten() {
                    ops.push_back(PrimOp::Send {
                        dst: nb,
                        bytes: *bytes,
                        mid: match_id(uid, 0, k, r, nb),
                    });
                }
                for nb in [left, right].into_iter().flatten() {
                    ops.push_back(PrimOp::Recv {
                        src: nb,
                        mid: match_id(uid, 0, k, nb, r),
                        family: Family::Halo,
                    });
                }
            }
        }
        CommPhase::Halo3D {
            dims,
            bytes,
            repeats,
        } => {
            debug_assert_eq!(dims.0 * dims.1 * dims.2, p);
            let neighbors = crate::workload::grid_neighbors(r, *dims);
            for k in 0..*repeats {
                for &nb in &neighbors {
                    ops.push_back(PrimOp::Send {
                        dst: nb,
                        bytes: *bytes,
                        mid: match_id(uid, 0, k, r, nb),
                    });
                }
                for &nb in &neighbors {
                    ops.push_back(PrimOp::Recv {
                        src: nb,
                        mid: match_id(uid, 0, k, nb, r),
                        family: Family::Halo,
                    });
                }
            }
        }
        CommPhase::Allreduce { bytes, repeats } => {
            for k in 0..*repeats {
                expand_allreduce(ctx.config.allreduce_algo, r, p, *bytes, uid, k, ops);
            }
        }
        CommPhase::Pairs { pairs, bytes } => {
            for (i, &(a, b)) in pairs.iter().enumerate() {
                let other = if a == r {
                    b
                } else if b == r {
                    a
                } else {
                    continue;
                };
                ops.push_back(PrimOp::Send {
                    dst: other,
                    bytes: *bytes,
                    mid: match_id(uid, i as u32, 0, r, other),
                });
                ops.push_back(PrimOp::Recv {
                    src: other,
                    mid: match_id(uid, i as u32, 0, other, r),
                    family: Family::Pairs,
                });
            }
        }
        CommPhase::Bcast { bytes } => {
            let rounds = log2_rounds(p);
            if r > 0 {
                let level = 31 - r.leading_zeros(); // round in which r receives
                let src = r - (1 << level);
                ops.push_back(PrimOp::Recv {
                    src,
                    mid: match_id(uid, level, 0, src, r),
                    family: Family::Other,
                });
                for k in (level + 1)..rounds {
                    let dst = r + (1 << k);
                    if dst < p {
                        ops.push_back(PrimOp::Send {
                            dst,
                            bytes: *bytes,
                            mid: match_id(uid, k, 0, r, dst),
                        });
                    }
                }
            } else {
                for k in 0..rounds {
                    let dst = 1u32 << k;
                    if dst < p {
                        ops.push_back(PrimOp::Send {
                            dst,
                            bytes: *bytes,
                            mid: match_id(uid, k, 0, 0, dst),
                        });
                    }
                }
            }
        }
        CommPhase::Gather { bytes_per_rank } => {
            if r == 0 {
                for src in 1..p {
                    ops.push_back(PrimOp::Recv {
                        src,
                        mid: match_id(uid, 0, 0, src, 0),
                        family: Family::Other,
                    });
                }
            } else {
                ops.push_back(PrimOp::Send {
                    dst: 0,
                    bytes: *bytes_per_rank,
                    mid: match_id(uid, 0, 0, r, 0),
                });
            }
        }
        CommPhase::Barrier => {
            for k in 0..log2_rounds(p) {
                let dist = 1u32 << k;
                let dst = (r + dist) % p;
                let src = (r + p - dist) % p;
                ops.push_back(PrimOp::Send {
                    dst,
                    bytes: 8,
                    mid: match_id(uid, k, 0, r, dst),
                });
                ops.push_back(PrimOp::Recv {
                    src,
                    mid: match_id(uid, k, 0, src, r),
                    family: Family::Other,
                });
            }
        }
    }
}

fn expand_allreduce(
    algo: AllreduceAlgo,
    r: u32,
    p: u32,
    bytes: u64,
    uid: u64,
    rep: u32,
    ops: &mut VecDeque<PrimOp>,
) {
    match algo {
        AllreduceAlgo::RecursiveDoubling => {
            for k in 0..log2_rounds(p) {
                let partner = r ^ (1 << k);
                if partner < p {
                    ops.push_back(PrimOp::Send {
                        dst: partner,
                        bytes,
                        mid: match_id(uid, k, rep, r, partner),
                    });
                    ops.push_back(PrimOp::Recv {
                        src: partner,
                        mid: match_id(uid, k, rep, partner, r),
                        family: Family::Allreduce,
                    });
                }
            }
        }
        AllreduceAlgo::Ring => {
            let chunk = bytes.div_ceil(p as u64).max(1);
            let right = (r + 1) % p;
            let left = (r + p - 1) % p;
            for j in 0..2 * (p - 1) {
                ops.push_back(PrimOp::Send {
                    dst: right,
                    bytes: chunk,
                    mid: match_id(uid, j, rep, r, right),
                });
                ops.push_back(PrimOp::Recv {
                    src: left,
                    mid: match_id(uid, j, rep, left, r),
                    family: Family::Allreduce,
                });
            }
        }
        AllreduceAlgo::Rabenseifner => {
            let rounds = log2_rounds(p);
            let mut round_no = 0u32;
            for k in 0..rounds {
                let vol = (bytes >> (k + 1)).max(1);
                push_pairwise(r, p, k, vol, uid, rep, round_no, ops);
                round_no += 1;
            }
            for k in (0..rounds).rev() {
                let vol = (bytes >> (k + 1)).max(1);
                push_pairwise(r, p, k, vol, uid, rep, round_no, ops);
                round_no += 1;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn push_pairwise(
    r: u32,
    p: u32,
    k: u32,
    bytes: u64,
    uid: u64,
    rep: u32,
    round_no: u32,
    ops: &mut VecDeque<PrimOp>,
) {
    let partner = r ^ (1 << k);
    if partner < p {
        ops.push_back(PrimOp::Send {
            dst: partner,
            bytes,
            mid: match_id(uid, round_no, rep, r, partner),
        });
        ops.push_back(PrimOp::Recv {
            src: partner,
            mid: match_id(uid, round_no, rep, partner, r),
            family: Family::Allreduce,
        });
    }
}

/// Drive `rank` forward until it blocks, computes, or finishes.
fn advance(sim: &mut ShardSim, rank: u32) {
    loop {
        let op = match sim.ranks[rank as usize].queue.pop_front() {
            Some(op) => op,
            None => {
                if refill(sim, rank) {
                    continue;
                }
                let rs = &mut sim.ranks[rank as usize];
                if !rs.finished {
                    rs.finished = true;
                    sim.live_ranks -= 1;
                }
                return;
            }
        };
        match op {
            PrimOp::Compute(secs) => {
                let d = SimDuration::from_secs_f64(secs);
                let now = sim.now();
                sim.rec
                    .span(SpanCategory::Compute, "solver-compute", rank, now, now + d);
                sim.sched_after(d, Ev::Advance { rank });
                return;
            }
            PrimOp::Send { dst, bytes, mid } => {
                let overhead = start_send(sim, rank, dst, bytes, mid);
                let d = SimDuration::from_secs_f64(overhead);
                let now = sim.now();
                sim.rec
                    .span(SpanCategory::Protocol, "send-overhead", rank, now, now + d);
                sim.sched_after(d, Ev::Advance { rank });
                return;
            }
            PrimOp::Recv {
                src: _,
                mid,
                family,
            } => {
                let now = sim.now();
                let m = sim.msgs.entry(mid).or_default();
                if m.arrived {
                    sim.msgs.remove(&mid);
                    // same-node vs inter overhead difference is tiny on the
                    // receive side; use the transport the sender used
                    let o = sim.ctx.intra.overhead_s.max(sim.ctx.inter.overhead_s);
                    let d = SimDuration::from_secs_f64(o);
                    sim.rec
                        .span(SpanCategory::Protocol, "recv-overhead", rank, now, now + d);
                    sim.sched_after(d, Ev::Advance { rank });
                    return;
                }
                m.recv_posted = true;
                m.waiting = Some((rank, now, family));
                if let Some((src, dst, bytes)) = m.rdv_sender.take() {
                    // rendezvous partner was parked: run the handshake now
                    let t = *transport_for(sim, src, dst);
                    let handshake = 2.0 * (t.latency_s + 2.0 * t.overhead_s);
                    let hd = SimDuration::from_secs_f64(handshake);
                    if sim.ctx.same_domain(src, dst) {
                        sim.rec.span(
                            SpanCategory::Protocol,
                            "rendezvous-handshake",
                            src,
                            now,
                            now + hd,
                        );
                        sim.sched_after(
                            hd,
                            Ev::Transfer {
                                src,
                                dst,
                                bytes,
                                mid,
                            },
                        );
                    } else {
                        // the sender parked at a probe: grant across the
                        // fabric, it stamps the handshake span on arrival
                        sim.sched_after(
                            hd,
                            Ev::RdvGrant {
                                src,
                                dst,
                                bytes,
                                mid,
                                sent_at: now,
                            },
                        );
                    }
                }
                return;
            }
        }
    }
}

fn transport_for(sim: &ShardSim, src: u32, dst: u32) -> &TransportParams {
    if sim.ctx.map.same_node(src, dst) {
        &sim.ctx.intra
    } else {
        &sim.ctx.inter
    }
}

/// Post a message; returns the sender-side CPU overhead to charge.
fn start_send(sim: &mut ShardSim, src: u32, dst: u32, bytes: u64, mid: u64) -> f64 {
    let same = sim.ctx.map.same_node(src, dst);
    if same {
        sim.intra_msgs += 1;
    } else {
        sim.inter_msgs += 1;
        sim.inter_bytes += bytes;
    }
    let t = *transport_for(sim, src, dst);
    if bytes > t.eager_threshold {
        // rendezvous: the payload may move only once the receiver is ready
        if sim.ctx.same_domain(src, dst) {
            let m = sim.msgs.entry(mid).or_default();
            if m.recv_posted {
                let handshake = 2.0 * (t.latency_s + 2.0 * t.overhead_s);
                let hd = SimDuration::from_secs_f64(handshake);
                let now = sim.now();
                sim.rec.span(
                    SpanCategory::Protocol,
                    "rendezvous-handshake",
                    src,
                    now,
                    now + hd,
                );
                sim.sched_after(
                    hd,
                    Ev::Transfer {
                        src,
                        dst,
                        bytes,
                        mid,
                    },
                );
            } else {
                m.rdv_sender = Some((src, dst, bytes));
            }
        } else {
            // the receiver's message table lives on another shard: probe it
            let probe = SimDuration::from_secs_f64(t.latency_s + 2.0 * t.overhead_s);
            let sent_at = sim.now();
            sim.sched_after(
                probe,
                Ev::RdvProbe {
                    src,
                    dst,
                    bytes,
                    mid,
                    sent_at,
                },
            );
        }
    } else {
        enqueue_transfer(sim, src, dst, bytes, mid);
    }
    t.overhead_s
}

/// Queue the payload on the sending node's wire (NIC or intra pipe),
/// passing first through the node's serialized bridge path if the job
/// runs under Docker networking.
fn enqueue_transfer(sim: &mut ShardSim, src: u32, dst: u32, bytes: u64, mid: u64) {
    let serial = sim.ctx.bridge_serial_s;
    if serial > 0.0 {
        let node = sim.ctx.map.node_of(src);
        if let Some(ev) = sim.bridges[node as usize].acquire(Ev::BridgeGranted {
            node,
            src,
            dst,
            bytes,
            mid,
        }) {
            sim.sched_after(SimDuration::ZERO, ev);
        }
    } else {
        enqueue_transfer_wire(sim, src, dst, bytes, mid);
    }
}

/// Queue the payload directly on the wire: the intra-node pipe, the whole
/// same-leaf route, or the source segment of a cross-leaf route.
fn enqueue_transfer_wire(sim: &mut ShardSim, src: u32, dst: u32, bytes: u64, mid: u64) {
    let t = *transport_for(sim, src, dst);
    if sim.ctx.map.same_node(src, dst) {
        let node = sim.ctx.map.node_of(src);
        let ser = SimDuration::from_secs_f64(t.serialization_seconds(bytes));
        let lat = SimDuration::from_secs_f64(t.latency_s);
        if let Some(ev) = sim.pipes[node as usize].acquire(Ev::PipeGranted {
            node,
            dst,
            ser,
            lat,
            mid,
        }) {
            sim.sched_after(SimDuration::ZERO, ev);
        }
        return;
    }
    let route = sim.ctx.routes.route(src, dst);
    // integer byte tallies for the utilization table; all four links are
    // tallied at the sender so the sums are layout-independent
    for &l in route.links() {
        sim.link_bytes[l.index()] += bytes;
    }
    if route.links().len() < 4 {
        // same leaf: claim the whole route and stream across it at once
        let mut rate = f64::INFINITY;
        for &l in route.links() {
            rate = rate.min(sim.ctx.link_rate[l.index()]);
        }
        let ser = SimDuration::from_secs_f64(bytes as f64 / rate);
        let lat = SimDuration::from_secs_f64(t.latency_s + route.latency_s());
        acquire_route(sim, route, 0, ser, lat, dst, mid);
    } else {
        // cross-leaf: store-and-forward over two shard-local segments
        acquire_seg(sim, src, dst, bytes, 0, 0, mid);
    }
}

/// Claim a same-leaf route's links one by one in traversal order (node-up,
/// node-down — a fixed class order, so chained holds cannot deadlock), then
/// hold them all for the serialization time.
#[allow(clippy::too_many_arguments)]
fn acquire_route(
    sim: &mut ShardSim,
    route: Route,
    idx: usize,
    ser: SimDuration,
    lat: SimDuration,
    dst: u32,
    mid: u64,
) {
    if let Some(&link) = route.links().get(idx) {
        if let Some(ev) = sim.links[link.index()].acquire(Ev::RouteGranted {
            route,
            idx: (idx + 1) as u8,
            ser,
            lat,
            dst,
            mid,
        }) {
            sim.sched_after(SimDuration::ZERO, ev);
        }
        return;
    }
    // all links held: the payload streams across the whole route at the
    // narrowest per-slot rate
    let now = sim.now();
    let link_track_base = sim.ctx.map.ranks() + sim.ctx.map.nodes;
    for &l in route.links() {
        sim.rec.span(
            SpanCategory::Link,
            "link-busy",
            link_track_base + l.0,
            now,
            now + ser,
        );
    }
    sim.sched_after(
        ser,
        Ev::RouteSerDone {
            route,
            lat,
            dst,
            mid,
        },
    );
}

/// The per-segment hold times of a cross-leaf route: the full serialization
/// time at the narrowest per-slot rate, split between the source segment
/// (node-up + leaf-up) and the destination segment (leaf-down + node-down)
/// in proportion to inverse segment rate. Both shards recompute this from
/// `(src, dst, bytes)` alone, so the split never has to cross the fabric.
fn seg_holds(ctx: &JobCtx, route: &Route, bytes: u64) -> (f64, f64) {
    let ls = route.links();
    let r0 = ctx.link_rate[ls[0].index()].min(ctx.link_rate[ls[1].index()]);
    let r1 = ctx.link_rate[ls[2].index()].min(ctx.link_rate[ls[3].index()]);
    let ser = bytes as f64 / r0.min(r1);
    // w0 / (w0 + w1) with weights w = 1/r simplifies to r1 / (r0 + r1)
    let h0 = ser * (r1 / (r0 + r1));
    (h0, ser - h0)
}

/// Claim one cross-leaf segment's links in traversal order, then hold them
/// for the segment's share of the serialization time.
fn acquire_seg(sim: &mut ShardSim, src: u32, dst: u32, bytes: u64, seg: u8, idx: usize, mid: u64) {
    let route = sim.ctx.routes.route(src, dst);
    let end = if seg == 0 { 2 } else { 4 };
    if idx < end {
        let link = route.links()[idx];
        if let Some(ev) = sim.links[link.index()].acquire(Ev::SegGranted {
            src,
            dst,
            bytes,
            seg,
            idx: (idx + 1) as u8,
            mid,
        }) {
            sim.sched_after(SimDuration::ZERO, ev);
        }
        return;
    }
    // both segment links held: stream the payload through them
    let (h0, h1) = seg_holds(&sim.ctx, &route, bytes);
    let hold = SimDuration::from_secs_f64(if seg == 0 { h0 } else { h1 });
    let now = sim.now();
    let link_track_base = sim.ctx.map.ranks() + sim.ctx.map.nodes;
    for &l in &route.links()[end - 2..end] {
        sim.rec.span(
            SpanCategory::Link,
            "link-busy",
            link_track_base + l.0,
            now,
            now + hold,
        );
    }
    sim.sched_after(
        hold,
        Ev::SegSerDone {
            src,
            dst,
            bytes,
            seg,
            mid,
        },
    );
}

/// Message arrived at the receiver.
fn deliver(sim: &mut ShardSim, mid: u64) {
    let m = sim.msgs.entry(mid).or_default();
    if let Some((rank, posted_at, family)) = m.waiting.take() {
        sim.msgs.remove(&mid);
        let o = sim.ctx.intra.overhead_s.max(sim.ctx.inter.overhead_s);
        let od = SimDuration::from_secs_f64(o);
        let now = sim.now();
        // blocked-wait span: from the posted receive to delivery + overhead
        sim.rec
            .span(family.category(), "recv-wait", rank, posted_at, now + od);
        sim.sched_after(od, Ev::Advance { rank });
    } else {
        m.arrived = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::StepProfile;
    use harborsim_hw::{CpuModel, InterconnectKind};
    use harborsim_net::{DataPath, Topology, TransportSelection};

    fn des(nodes: u32, rpn: u32, path: DataPath) -> DesEngine {
        DesEngine::new(
            NodeSpec::dual_socket(CpuModel::xeon_e5_2697v3(), 128),
            NetworkModel::compose(
                InterconnectKind::GigabitEthernet,
                TransportSelection::Native,
                path,
                Topology::small_cluster(),
            ),
            RankMap::block(nodes, rpn, 1),
            EngineConfig::default(),
        )
    }

    fn fat_des(nodes: u32, rpn: u32, nodes_per_leaf: u32, path: DataPath) -> DesEngine {
        DesEngine::new(
            NodeSpec::dual_socket(CpuModel::xeon_e5_2697v3(), 128),
            NetworkModel::compose(
                InterconnectKind::GigabitEthernet,
                TransportSelection::Native,
                path,
                Topology::FatTree {
                    nodes_per_leaf,
                    hop_latency_s: 0.4e-6,
                    taper: 0.8,
                },
            ),
            RankMap::block(nodes, rpn, 1),
            EngineConfig::default(),
        )
    }

    fn step(comm: Vec<CommPhase>) -> StepProfile {
        StepProfile {
            flops_per_rank: 1e8,
            imbalance: 1.02,
            regions: 5.0,
            comm,
        }
    }

    #[test]
    fn compute_only_job_matches_hand_calc() {
        let e = des(1, 4, DataPath::Host);
        let mut cfg = e.clone();
        cfg.config.jitter_sigma = 0.0;
        let job = JobProfile::uniform(
            StepProfile {
                flops_per_rank: 2e9,
                imbalance: 1.0,
                regions: 0.0,
                comm: vec![],
            },
            3,
        );
        let r = cfg.run(&job, 1);
        // 2 GFLOP at 2.0 GF/s = 1 s per step, 3 steps
        assert!(
            (r.elapsed.as_secs_f64() - 3.0).abs() < 1e-6,
            "elapsed={}",
            r.elapsed
        );
        assert_eq!(r.inter_node_msgs, 0);
    }

    #[test]
    fn halo_chain_runs_and_counts_messages() {
        let e = des(2, 4, DataPath::Host);
        let job = JobProfile::uniform(
            step(vec![CommPhase::Halo1D {
                bytes: 10_000,
                repeats: 2,
            }]),
            3,
        );
        let r = e.run(&job, 5);
        // chain of 8 ranks over 2 nodes: 1 cut edge -> 2 inter msgs per
        // exchange; 6 intra edges -> 12 intra msgs per exchange
        assert_eq!(r.inter_node_msgs, 2 * 2 * 3);
        assert_eq!(r.intra_node_msgs, 12 * 2 * 3);
        assert_eq!(r.inter_node_bytes, 10_000 * 12);
        assert!(r.comm.halo > SimDuration::ZERO);
    }

    #[test]
    fn allreduce_completes_for_odd_rank_counts() {
        for p in [2u32, 3, 5, 7, 12] {
            let e = des(1, p, DataPath::Host);
            let job = JobProfile::uniform(
                step(vec![CommPhase::Allreduce {
                    bytes: 8,
                    repeats: 3,
                }]),
                2,
            );
            let r = e.run(&job, 1);
            assert!(r.elapsed > SimDuration::ZERO, "p={p}");
        }
    }

    #[test]
    fn all_collective_phases_terminate() {
        let e = des(2, 5, DataPath::Host);
        let job = JobProfile::uniform(
            step(vec![
                CommPhase::Bcast { bytes: 4096 },
                CommPhase::Gather {
                    bytes_per_rank: 256,
                },
                CommPhase::Barrier,
                CommPhase::Allreduce {
                    bytes: 16,
                    repeats: 2,
                },
                CommPhase::Halo1D {
                    bytes: 1024,
                    repeats: 1,
                },
                CommPhase::Pairs {
                    pairs: vec![(0, 9), (3, 7)],
                    bytes: 2048,
                },
            ]),
            2,
        );
        let r = e.run(&job, 3);
        assert!(r.elapsed > SimDuration::ZERO);
        assert!(r.comm.other > SimDuration::ZERO);
        assert!(r.comm.pairs > SimDuration::ZERO);
    }

    #[test]
    fn rendezvous_messages_terminate() {
        // 1 MB >> eager threshold: exercises the rendezvous path
        let e = des(2, 2, DataPath::Host);
        let job = JobProfile::uniform(
            step(vec![CommPhase::Halo1D {
                bytes: 1 << 20,
                repeats: 1,
            }]),
            2,
        );
        let r = e.run(&job, 1);
        assert!(r.elapsed > SimDuration::ZERO);
        // 1 MB over 117 MB/s is ~9 ms per message; the chain has 3 edges
        assert!(r.comm.halo.as_secs_f64() > 5e-3);
    }

    #[test]
    fn deterministic_per_seed() {
        let e = des(2, 6, DataPath::Host);
        let job = JobProfile::uniform(
            step(vec![
                CommPhase::Halo1D {
                    bytes: 40_000,
                    repeats: 3,
                },
                CommPhase::Allreduce {
                    bytes: 8,
                    repeats: 5,
                },
            ]),
            4,
        );
        let a = e.run(&job, 11);
        let b = e.run(&job, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn repeated_runs_reuse_pooled_scratch() {
        let e = des(2, 4, DataPath::Host);
        let job = JobProfile::uniform(
            step(vec![CommPhase::Halo1D {
                bytes: 10_000,
                repeats: 2,
            }]),
            2,
        );
        let first = e.run(&job, 7);
        assert_eq!(e.scratch.idle(), 1, "run must return its scratch");
        for seed in 0..4 {
            let again = e.run(&job, 7);
            assert_eq!(first, again, "pooled scratch must not leak state");
            let _ = e.run(&job, seed); // interleave other seeds
        }
        assert_eq!(e.scratch.idle(), 1);
    }

    #[test]
    fn docker_bridge_slows_everything() {
        let job = JobProfile::uniform(
            step(vec![
                CommPhase::Halo1D {
                    bytes: 40_000,
                    repeats: 5,
                },
                CommPhase::Allreduce {
                    bytes: 8,
                    repeats: 10,
                },
            ]),
            3,
        );
        let host = des(2, 8, DataPath::Host).run(&job, 1);
        let dock = des(2, 8, DataPath::docker_default_bridge()).run(&job, 1);
        assert!(
            dock.elapsed.as_secs_f64() > 1.05 * host.elapsed.as_secs_f64(),
            "docker {} vs host {}",
            dock.elapsed,
            host.elapsed
        );
    }

    #[test]
    fn halo3d_terminates_and_counts() {
        use crate::workload::factor3;
        let e = des(2, 4, DataPath::Host); // 8 ranks -> 2x2x2 grid
        let dims = factor3(8);
        let job = JobProfile::uniform(
            step(vec![CommPhase::Halo3D {
                dims,
                bytes: 5_000,
                repeats: 2,
            }]),
            3,
        );
        let r = e.run(&job, 1);
        // 2x2x2 grid: every rank has 3 neighbours -> 24 directed msgs per
        // exchange, x-neighbours (12 msgs) intra under block mapping of 4/node
        assert_eq!(r.inter_node_msgs + r.intra_node_msgs, 24 * 2 * 3);
        assert!(r.inter_node_msgs > 0 && r.intra_node_msgs > 0);
    }

    #[test]
    fn ring_allreduce_terminates() {
        let mut e = des(1, 6, DataPath::Host);
        e.config.allreduce_algo = AllreduceAlgo::Ring;
        let job = JobProfile::uniform(
            step(vec![CommPhase::Allreduce {
                bytes: 6000,
                repeats: 1,
            }]),
            1,
        );
        let r = e.run(&job, 1);
        assert!(r.elapsed > SimDuration::ZERO);
    }

    #[test]
    fn rabenseifner_terminates() {
        let mut e = des(2, 4, DataPath::Host);
        e.config.allreduce_algo = AllreduceAlgo::Rabenseifner;
        let job = JobProfile::uniform(
            step(vec![CommPhase::Allreduce {
                bytes: 4096,
                repeats: 2,
            }]),
            2,
        );
        let r = e.run(&job, 1);
        assert!(r.elapsed > SimDuration::ZERO);
    }

    // -- sharding --

    fn mixed_job() -> JobProfile {
        JobProfile::uniform(
            step(vec![
                CommPhase::Halo1D {
                    bytes: 20_000,
                    repeats: 2,
                },
                // above the GigE eager threshold: cross-leaf rendezvous
                CommPhase::Halo1D {
                    bytes: 256 * 1024,
                    repeats: 1,
                },
                CommPhase::Allreduce {
                    bytes: 64,
                    repeats: 3,
                },
                CommPhase::Barrier,
            ]),
            3,
        )
    }

    /// Run traced with a capturing recorder, returning the result and the
    /// order-insensitive span fingerprint.
    fn run_fingerprinted(e: &DesEngine, job: &JobProfile, seed: u64) -> (SimResult, u64) {
        let mut rec = Recorder::capturing();
        let r = e.run_traced(job, seed, &mut rec);
        let fp = rec.take_buffer().fingerprint();
        (r, fp)
    }

    #[test]
    fn sharded_runs_match_serial_bit_for_bit() {
        // 8 nodes on 2-node leaves: 4 domains; shard counts that divide the
        // leaves evenly, unevenly, and overshoot (clamped to 4)
        let job = mixed_job();
        let serial = fat_des(8, 4, 2, DataPath::Host);
        assert_eq!(serial.effective_shards(), 1);
        for shards in [2u32, 3, 4, 8] {
            let sharded = fat_des(8, 4, 2, DataPath::Host).with_shards(shards);
            assert!(sharded.effective_shards() > 1, "shards={shards}");
            for seed in [1u64, 7] {
                let (a, fa) = run_fingerprinted(&serial, &job, seed);
                let (b, fb) = run_fingerprinted(&sharded, &job, seed);
                assert_eq!(a, b, "shards={shards} seed={seed}");
                assert_eq!(fa, fb, "trace diverged: shards={shards} seed={seed}");
            }
        }
    }

    #[test]
    fn sharded_matches_serial_under_docker_bridge() {
        let job = mixed_job();
        let serial = fat_des(8, 4, 2, DataPath::docker_default_bridge());
        let sharded = fat_des(8, 4, 2, DataPath::docker_default_bridge()).with_shards(4);
        let (a, fa) = run_fingerprinted(&serial, &job, 3);
        let (b, fb) = run_fingerprinted(&sharded, &job, 3);
        assert_eq!(a, b);
        assert_eq!(fa, fb);
    }

    #[test]
    fn single_leaf_topology_forces_serial() {
        let e = des(2, 4, DataPath::Host).with_shards(8);
        assert_eq!(e.effective_shards(), 1, "one leaf -> one domain");
        let job = mixed_job();
        assert_eq!(e.run(&job, 2), des(2, 4, DataPath::Host).run(&job, 2));
    }

    #[test]
    fn run_counted_reports_fired_events() {
        let e = fat_des(4, 2, 2, DataPath::Host);
        let job = mixed_job();
        let (r, events) = e.run_counted(&job, 1, &mut Recorder::aggregating());
        assert!(r.elapsed > SimDuration::ZERO);
        // at the very least every rank fires its seed Advance
        assert!(events >= u64::from(e.map.ranks()), "events={events}");
        let (_, sharded_events) = fat_des(4, 2, 2, DataPath::Host).with_shards(2).run_counted(
            &job,
            1,
            &mut Recorder::aggregating(),
        );
        assert_eq!(events, sharded_events, "event count is layout-invariant");
    }
}
