//! A functional, in-process MPI over OS threads.
//!
//! This is *real* message passing — actual `f64` payloads over channels
//! between actual threads — not a performance model. The mini-Alya solvers
//! run their domain decomposition on it, which lets HarborSim verify that
//! the decomposed solvers produce the same numbers as their sequential
//! versions before trusting the communication *pattern* they hand to the
//! performance engines.
//!
//! Deliberately small: blocking send/recv with tag matching, plus the
//! collectives the solvers need (binomial reduce + broadcast based, so any
//! rank count works). Unbounded channels make `send` non-blocking, which is
//! the same progress semantics the DES engine models.

use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, Sender};

/// Message payload: a tag plus the data.
type Packet = (u32, Vec<f64>);

/// Tag bit reserved for internal collective traffic.
const COLL_TAG_BIT: u32 = 1 << 31;

/// One rank's endpoint of the communicator.
pub struct ThreadComm {
    rank: usize,
    size: usize,
    /// `senders[d]` sends to rank `d`.
    senders: Vec<Sender<Packet>>,
    /// `receivers[s]` receives from rank `s`.
    receivers: Vec<Receiver<Packet>>,
    /// Out-of-order buffer per source (messages popped while tag-matching).
    pending: Vec<VecDeque<Packet>>,
    /// Collective sequence number (kept in lockstep by SPMD execution).
    coll_seq: u32,
}

impl ThreadComm {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Blocking-buffered send of `data` to rank `to` with `tag`.
    ///
    /// # Panics
    /// Panics if `tag` uses the reserved high bit or `to` is out of range.
    pub fn send(&mut self, to: usize, tag: u32, data: &[f64]) {
        assert!(tag & COLL_TAG_BIT == 0, "tag high bit is reserved");
        self.send_raw(to, tag, data.to_vec());
    }

    fn send_raw(&mut self, to: usize, tag: u32, data: Vec<f64>) {
        assert!(to < self.size, "rank {to} out of range");
        self.senders[to]
            .send((tag, data))
            .expect("peer rank hung up");
    }

    /// Blocking receive of the next message from `from` with `tag`.
    pub fn recv(&mut self, from: usize, tag: u32) -> Vec<f64> {
        assert!(tag & COLL_TAG_BIT == 0, "tag high bit is reserved");
        self.recv_raw(from, tag)
    }

    fn recv_raw(&mut self, from: usize, tag: u32) -> Vec<f64> {
        assert!(from < self.size, "rank {from} out of range");
        // check the out-of-order buffer first
        if let Some(pos) = self.pending[from].iter().position(|(t, _)| *t == tag) {
            return self.pending[from].remove(pos).expect("position vanished").1;
        }
        loop {
            let (t, data) = self.receivers[from].recv().expect("peer rank hung up");
            if t == tag {
                return data;
            }
            self.pending[from].push_back((t, data));
        }
    }

    /// Simultaneous exchange with two (possibly equal) partners, deadlock
    /// free thanks to buffered sends.
    pub fn sendrecv(&mut self, to: usize, data: &[f64], from: usize, tag: u32) -> Vec<f64> {
        self.send(to, tag, data);
        self.recv(from, tag)
    }

    fn next_coll_tag(&mut self) -> u32 {
        self.coll_seq = self.coll_seq.wrapping_add(1);
        COLL_TAG_BIT | (self.coll_seq & !COLL_TAG_BIT)
    }

    /// Element-wise reduction of `data` across all ranks with `op`,
    /// result broadcast to every rank (in place).
    pub fn allreduce<F>(&mut self, data: &mut [f64], op: F)
    where
        F: Fn(f64, f64) -> f64,
    {
        let tag = self.next_coll_tag();
        let (rank, size) = (self.rank, self.size);
        // binomial-tree reduce to rank 0
        let mut span = 1;
        while span < size {
            if rank % (2 * span) == 0 {
                let src = rank + span;
                if src < size {
                    let other = self.recv_raw(src, tag);
                    assert_eq!(other.len(), data.len(), "allreduce length mismatch");
                    for (a, b) in data.iter_mut().zip(other) {
                        *a = op(*a, b);
                    }
                }
            } else if rank % (2 * span) == span {
                let dst = rank - span;
                self.send_raw(dst, tag, data.to_vec());
                break;
            }
            span *= 2;
        }
        // binomial broadcast back down
        self.bcast_internal(data, tag ^ 0x4000_0000);
    }

    /// Sum-allreduce of a single scalar.
    pub fn allreduce_sum_scalar(&mut self, x: f64) -> f64 {
        let mut buf = [x];
        self.allreduce(&mut buf, |a, b| a + b);
        buf[0]
    }

    /// Max-allreduce of a single scalar.
    pub fn allreduce_max_scalar(&mut self, x: f64) -> f64 {
        let mut buf = [x];
        self.allreduce(&mut buf, f64::max);
        buf[0]
    }

    fn bcast_internal(&mut self, data: &mut [f64], tag: u32) {
        let (rank, size) = (self.rank, self.size);
        // receive once (from the sender that owns our subtree), then forward
        if rank != 0 {
            let mut span = 1;
            while span * 2 <= rank {
                span *= 2;
            }
            let src = rank - span;
            let got = self.recv_raw(src, tag);
            data.copy_from_slice(&got);
        }
        let mut span = 1;
        while span <= rank {
            span *= 2;
        }
        while span < size {
            let dst = rank + span;
            if dst < size && span > rank {
                self.send_raw(dst, tag, data.to_vec());
            }
            span *= 2;
        }
    }

    /// Broadcast `data` from rank 0 to all ranks (in place).
    pub fn bcast(&mut self, data: &mut [f64]) {
        let tag = self.next_coll_tag();
        self.bcast_internal(data, tag);
    }

    /// Gather every rank's `data` at rank 0 (returned in rank order there,
    /// `None` elsewhere).
    pub fn gather(&mut self, data: &[f64]) -> Option<Vec<Vec<f64>>> {
        let tag = self.next_coll_tag();
        if self.rank == 0 {
            let mut out = Vec::with_capacity(self.size);
            out.push(data.to_vec());
            for src in 1..self.size {
                out.push(self.recv_raw(src, tag));
            }
            Some(out)
        } else {
            self.send_raw(0, tag, data.to_vec());
            None
        }
    }

    /// Full barrier.
    pub fn barrier(&mut self) {
        let mut token = [0.0];
        self.allreduce(&mut token, |a, b| a + b);
    }

    /// Run an SPMD function on `size` ranks (one OS thread each) and return
    /// the per-rank results in rank order.
    pub fn run<T, F>(size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut ThreadComm) -> T + Sync,
    {
        assert!(size > 0);
        // channel matrix: chan[s][d] carries s -> d
        let mut txs: Vec<Vec<Option<Sender<Packet>>>> = Vec::with_capacity(size);
        let mut rxs: Vec<Vec<Option<Receiver<Packet>>>> = (0..size)
            .map(|_| (0..size).map(|_| None).collect())
            .collect();
        #[allow(clippy::needless_range_loop)] // s and d jointly index the matrix
        for s in 0..size {
            let mut row = Vec::with_capacity(size);
            for d in 0..size {
                let (tx, rx) = channel();
                row.push(Some(tx));
                rxs[d][s] = Some(rx);
            }
            txs.push(row);
        }
        let mut comms: Vec<ThreadComm> = (0..size)
            .map(|r| ThreadComm {
                rank: r,
                size,
                senders: txs[r]
                    .iter_mut()
                    .map(|t| t.take().expect("tx taken twice"))
                    .collect(),
                receivers: rxs[r]
                    .iter_mut()
                    .map(|r| r.take().expect("rx taken twice"))
                    .collect(),
                pending: (0..size).map(|_| VecDeque::new()).collect(),
                coll_seq: 0,
            })
            .collect();

        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .iter_mut()
                .map(|comm| scope.spawn(move || f(comm)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong() {
        let results = ThreadComm::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, &[1.0, 2.0, 3.0]);
                comm.recv(1, 8)
            } else {
                let got = comm.recv(0, 7);
                let doubled: Vec<f64> = got.iter().map(|x| x * 2.0).collect();
                comm.send(0, 8, &doubled);
                got
            }
        });
        assert_eq!(results[0], vec![2.0, 4.0, 6.0]);
        assert_eq!(results[1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn tag_matching_out_of_order() {
        let results = ThreadComm::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[1.0]);
                comm.send(1, 2, &[2.0]);
                vec![0.0]
            } else {
                // receive in reverse tag order
                let b = comm.recv(0, 2);
                let a = comm.recv(0, 1);
                vec![a[0], b[0]]
            }
        });
        assert_eq!(results[1], vec![1.0, 2.0]);
    }

    #[test]
    fn allreduce_sum_every_size() {
        for size in 1..=9 {
            let results = ThreadComm::run(size, |comm| {
                comm.allreduce_sum_scalar((comm.rank() + 1) as f64)
            });
            let expected = (size * (size + 1) / 2) as f64;
            for (r, &got) in results.iter().enumerate() {
                assert_eq!(got, expected, "size={size} rank={r}");
            }
        }
    }

    #[test]
    fn allreduce_vector_max() {
        let results = ThreadComm::run(4, |comm| {
            let mut v = vec![comm.rank() as f64, -(comm.rank() as f64)];
            comm.allreduce(&mut v, f64::max);
            v
        });
        for v in results {
            assert_eq!(v, vec![3.0, 0.0]);
        }
    }

    #[test]
    fn bcast_from_root() {
        for size in [1usize, 2, 3, 5, 8, 13] {
            let results = ThreadComm::run(size, |comm| {
                let mut v = if comm.rank() == 0 {
                    vec![42.0, 7.0]
                } else {
                    vec![0.0, 0.0]
                };
                comm.bcast(&mut v);
                v
            });
            for (r, v) in results.iter().enumerate() {
                assert_eq!(*v, vec![42.0, 7.0], "size={size} rank={r}");
            }
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let results = ThreadComm::run(5, |comm| comm.gather(&[comm.rank() as f64 * 10.0]));
        let root = results[0].as_ref().unwrap();
        assert_eq!(root.len(), 5);
        for (r, v) in root.iter().enumerate() {
            assert_eq!(*v, vec![r as f64 * 10.0]);
        }
        assert!(results[1..].iter().all(Option::is_none));
    }

    #[test]
    fn barrier_does_not_deadlock() {
        let results = ThreadComm::run(7, |comm| {
            for _ in 0..25 {
                comm.barrier();
            }
            comm.rank()
        });
        assert_eq!(results, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn sendrecv_ring_rotation() {
        let size = 6;
        let results = ThreadComm::run(size, |comm| {
            let (r, n) = (comm.rank(), comm.size());
            let right = (r + 1) % n;
            let left = (r + n - 1) % n;
            comm.sendrecv(right, &[r as f64], left, 3)
        });
        for (r, v) in results.iter().enumerate() {
            let left = (r + size - 1) % size;
            assert_eq!(*v, vec![left as f64]);
        }
    }

    #[test]
    fn mixed_collectives_and_ptp() {
        let results = ThreadComm::run(4, |comm| {
            let sum = comm.allreduce_sum_scalar(1.0);
            comm.barrier();
            let m = comm.allreduce_max_scalar(comm.rank() as f64);
            sum + m
        });
        for &v in &results {
            assert_eq!(v, 7.0);
        }
    }
}
