//! Execution results produced by both performance engines.

use harborsim_des::trace::{Rollup, SpanCategory};
use harborsim_des::SimDuration;

/// Where communication time went, by phase family.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommBreakdown {
    /// Halo-exchange time.
    pub halo: SimDuration,
    /// Allreduce time.
    pub allreduce: SimDuration,
    /// Coupling / explicit pairs time.
    pub pairs: SimDuration,
    /// Broadcast + gather + barrier time.
    pub other: SimDuration,
}

impl CommBreakdown {
    /// Derive the breakdown from a trace roll-up: the mean per-track
    /// (per-rank) blocked time in each communication family. This is the
    /// single roll-up both engines share — the analytic engine records its
    /// closed-form phases on one track, the DES engine records measured
    /// per-rank waits on `p` tracks, and this view makes them comparable.
    pub fn from_trace(rollup: &Rollup) -> CommBreakdown {
        CommBreakdown {
            halo: rollup.mean_per_track(SpanCategory::Halo),
            allreduce: rollup.mean_per_track(SpanCategory::Allreduce),
            pairs: rollup.mean_per_track(SpanCategory::Pairs),
            other: rollup.mean_per_track(SpanCategory::Other),
        }
    }

    /// Total communication time.
    pub fn total(&self) -> SimDuration {
        self.halo + self.allreduce + self.pairs + self.other
    }
}

/// How busy one fabric link was over a run. Both engines fill these with
/// the same fluid accounting — total payload bytes over link capacity —
/// so the utilization table is engine-comparable even though the DES
/// engine additionally queues messages on the links. (The DES engine sums
/// integer byte tallies and divides once at the end, so the figure is
/// bit-identical at every shard count.)
#[derive(Debug, Clone, PartialEq)]
pub struct LinkUsage {
    /// Link label from the graph, e.g. `node3:up`, `leaf0:spine-up`.
    pub label: String,
    /// Seconds the link spent draining payload bytes at full capacity.
    pub busy_s: f64,
    /// Payload bytes carried.
    pub bytes: u64,
}

/// The outcome of executing a job profile on a simulated machine.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// End-to-end elapsed time of the solver run (excludes deployment).
    pub elapsed: SimDuration,
    /// Time the critical path spent computing.
    pub compute: SimDuration,
    /// Communication time by family (critical-path attribution).
    pub comm: CommBreakdown,
    /// Total messages that crossed a node boundary.
    pub inter_node_msgs: u64,
    /// Total messages that stayed within a node.
    pub intra_node_msgs: u64,
    /// Total bytes that crossed node boundaries.
    pub inter_node_bytes: u64,
    /// Per-link utilization, one entry per link of the route table's graph
    /// (empty for single-node jobs with no inter-node traffic).
    pub links: Vec<LinkUsage>,
    /// Which engine produced this result ("analytic" or "des").
    pub engine: &'static str,
}

impl SimResult {
    /// Fraction of elapsed time spent communicating.
    pub fn comm_fraction(&self) -> f64 {
        let e = self.elapsed.as_secs_f64();
        if e == 0.0 {
            0.0
        } else {
            self.comm.total().as_secs_f64() / e
        }
    }

    /// Scale every time and counter by `k` (used to expand truncated jobs
    /// back to full length).
    pub fn scaled(&self, k: f64) -> SimResult {
        let sc = |d: SimDuration| d.mul_f64(k);
        SimResult {
            elapsed: sc(self.elapsed),
            compute: sc(self.compute),
            comm: CommBreakdown {
                halo: sc(self.comm.halo),
                allreduce: sc(self.comm.allreduce),
                pairs: sc(self.comm.pairs),
                other: sc(self.comm.other),
            },
            inter_node_msgs: (self.inter_node_msgs as f64 * k).round() as u64,
            intra_node_msgs: (self.intra_node_msgs as f64 * k).round() as u64,
            inter_node_bytes: (self.inter_node_bytes as f64 * k).round() as u64,
            links: self
                .links
                .iter()
                .map(|l| LinkUsage {
                    label: l.label.clone(),
                    busy_s: l.busy_s * k,
                    bytes: (l.bytes as f64 * k).round() as u64,
                })
                .collect(),
            engine: self.engine,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals() {
        let b = CommBreakdown {
            halo: SimDuration::from_secs(1),
            allreduce: SimDuration::from_secs(2),
            pairs: SimDuration::from_secs(3),
            other: SimDuration::from_secs(4),
        };
        assert_eq!(b.total(), SimDuration::from_secs(10));
    }

    #[test]
    fn comm_fraction_and_scaling() {
        let r = SimResult {
            elapsed: SimDuration::from_secs(10),
            compute: SimDuration::from_secs(6),
            comm: CommBreakdown {
                halo: SimDuration::from_secs(4),
                ..Default::default()
            },
            inter_node_msgs: 100,
            intra_node_msgs: 50,
            inter_node_bytes: 1_000,
            links: vec![LinkUsage {
                label: "node0:up".into(),
                busy_s: 0.5,
                bytes: 1_000,
            }],
            engine: "analytic",
        };
        assert!((r.comm_fraction() - 0.4).abs() < 1e-12);
        let s = r.scaled(2.0);
        assert_eq!(s.elapsed, SimDuration::from_secs(20));
        assert_eq!(s.inter_node_msgs, 200);
        assert_eq!(s.comm.halo, SimDuration::from_secs(8));
        assert!((s.links[0].busy_s - 1.0).abs() < 1e-12);
        assert_eq!(s.links[0].bytes, 2_000);
    }
}
