//! Rank-to-node placement.

use harborsim_net::{LinkGraph, NetworkModel, RouteTable};

/// How consecutive ranks are laid out on nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Ranks 0..rpn on node 0, the next rpn on node 1, ... (the batch-system
    /// default, and what Alya's 1D slab decomposition wants: neighbouring
    /// subdomains land on the same node).
    Block,
    /// Rank r on node r % nodes (pathological for halo locality; kept for
    /// the mapping ablation).
    RoundRobin,
}

/// A concrete placement of an MPI job: `nodes × ranks_per_node` ranks, each
/// with `threads_per_rank` OpenMP threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankMap {
    /// Number of nodes used.
    pub nodes: u32,
    /// MPI ranks per node.
    pub ranks_per_node: u32,
    /// OpenMP threads per rank.
    pub threads_per_rank: u32,
    /// Layout of ranks over nodes.
    pub placement: Placement,
}

impl RankMap {
    /// Block placement (the default in every experiment of the paper).
    pub fn block(nodes: u32, ranks_per_node: u32, threads_per_rank: u32) -> RankMap {
        assert!(nodes > 0 && ranks_per_node > 0 && threads_per_rank > 0);
        RankMap {
            nodes,
            ranks_per_node,
            threads_per_rank,
            placement: Placement::Block,
        }
    }

    /// Total MPI ranks.
    pub fn ranks(&self) -> u32 {
        self.nodes * self.ranks_per_node
    }

    /// Total cores in use.
    pub fn cores(&self) -> u64 {
        self.ranks() as u64 * self.threads_per_rank as u64
    }

    /// The node hosting `rank`.
    pub fn node_of(&self, rank: u32) -> u32 {
        debug_assert!(rank < self.ranks());
        match self.placement {
            Placement::Block => rank / self.ranks_per_node,
            Placement::RoundRobin => rank % self.nodes,
        }
    }

    /// Whether two ranks share a node.
    pub fn same_node(&self, a: u32, b: u32) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// For a 1D chain (rank r talks to r±1): how many chain edges cross
    /// node boundaries under this placement.
    pub fn chain_cut_edges(&self) -> u32 {
        let p = self.ranks();
        (0..p.saturating_sub(1))
            .filter(|&r| !self.same_node(r, r + 1))
            .count() as u32
    }
}

/// Build the [`RouteTable`] this placement induces on `network`'s fabric.
///
/// The node links carry the effective transport's stream rate — capped by
/// the NIC, which matters for Docker's bridge path where the transport's
/// nominal bandwidth can exceed what the NIC admits — while the leaf links
/// are sized from the raw NIC rate (switch hardware does not degrade when
/// the endpoints run a kernel-bound stack).
pub fn route_table(map: &RankMap, network: &NetworkModel) -> RouteTable {
    let stream = network.inter.bandwidth_bps.min(network.nic_bw_bps);
    let graph = LinkGraph::build(&network.topology, map.nodes, stream, network.nic_bw_bps);
    let node_of = (0..map.ranks()).map(|r| map.node_of(r)).collect();
    RouteTable::build(graph, node_of)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_mapping_groups_consecutive_ranks() {
        let m = RankMap::block(4, 28, 1);
        assert_eq!(m.ranks(), 112);
        assert_eq!(m.cores(), 112);
        assert_eq!(m.node_of(0), 0);
        assert_eq!(m.node_of(27), 0);
        assert_eq!(m.node_of(28), 1);
        assert_eq!(m.node_of(111), 3);
        assert!(m.same_node(0, 27));
        assert!(!m.same_node(27, 28));
    }

    #[test]
    fn round_robin_scatters() {
        let m = RankMap {
            nodes: 4,
            ranks_per_node: 28,
            threads_per_rank: 1,
            placement: Placement::RoundRobin,
        };
        assert_eq!(m.node_of(0), 0);
        assert_eq!(m.node_of(1), 1);
        assert_eq!(m.node_of(4), 0);
    }

    #[test]
    fn block_chain_cuts_equal_node_boundaries() {
        let m = RankMap::block(4, 28, 1);
        assert_eq!(m.chain_cut_edges(), 3);
        let m2 = RankMap::block(16, 40, 1);
        assert_eq!(m2.chain_cut_edges(), 15);
    }

    #[test]
    fn round_robin_chain_cuts_everything() {
        let m = RankMap {
            nodes: 4,
            ranks_per_node: 4,
            threads_per_rank: 1,
            placement: Placement::RoundRobin,
        };
        // every consecutive pair lands on different nodes
        assert_eq!(m.chain_cut_edges(), 15);
    }

    #[test]
    fn hybrid_core_accounting() {
        let m = RankMap::block(4, 2, 14);
        assert_eq!(m.ranks(), 8);
        assert_eq!(m.cores(), 112);
    }
}
