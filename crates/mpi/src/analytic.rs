//! The bulk-synchronous analytic performance engine.
//!
//! Costs a [`JobProfile`] against a node model, a composed network model and
//! a rank placement using LogGP closed forms over the routed link graph
//! shared with the DES engine ([`harborsim_net::link`]). Each communication
//! round deposits its messages on their routes in a fluid [`LinkSchedule`];
//! the round's wire time is the busiest link's drain time. Total work is
//! `O(phases × ranks·log ranks)` regardless of how many timesteps the job
//! has (steps are run-length encoded), which is what lets HarborSim sweep
//! the MareNostrum4 FSI case to 12,288 ranks in microseconds.
//!
//! All per-run working state — the link schedule, per-node round tallies,
//! per-phase and per-run link accumulators — lives in a pooled `Scratch`
//! reused across runs, so repeated `execute(seed)` on a cached plan
//! allocates nothing here. Phase costs proper are plain scalars
//! (`PhaseCost` is `Copy`); the per-link vectors that used to ride along
//! in it accumulate in place in the scratch instead, with the identical
//! floating-point operation order, so results are bit-for-bit unchanged.
//!
//! Modelling decisions (shared with the DES engine where applicable):
//!
//! - Per-rank protocol CPU costs parallelize across ranks; payload bytes
//!   leaving a node serialize through its NIC-fed uplink, and which spine
//!   link they then cross is a property of the placement, not a scalar.
//! - Intra-node messages share a node-wide memory/bridge pipe.
//! - Compute and communication do not overlap (Alya's solver phases are
//!   bulk-synchronous).
//! - OS jitter grows the effective compute time of the slowest of `p` ranks
//!   by `1 + σ·sqrt(2·ln p)` — the expected maximum of `p` log-normal
//!   deviates, the standard large-scale noise-amplification model.

use crate::collectives::{log2_rounds, AllreduceAlgo};
use crate::mapping::{route_table, RankMap};
use crate::result::{CommBreakdown, LinkUsage, SimResult};
use crate::workload::{CommPhase, JobProfile, StepProfile};
use harborsim_des::trace::{Recorder, SpanCategory};
use harborsim_des::{RngStream, SimDuration, SimTime};
use harborsim_hw::NodeSpec;
use harborsim_net::{LinkId, LinkSchedule, NetworkModel, RouteTable, ScratchPool};
use std::sync::Arc;

/// Knobs common to both engines.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Allreduce algorithm.
    pub allreduce_algo: AllreduceAlgo,
    /// Sigma of per-rank log-normal compute jitter (OS noise).
    pub jitter_sigma: f64,
    /// Multiplicative compute slowdown from the container runtime
    /// (cgroup accounting etc.); 1.0 = none.
    pub compute_tax: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            allreduce_algo: AllreduceAlgo::RecursiveDoubling,
            jitter_sigma: 0.01,
            compute_tax: 1.0,
        }
    }
}

/// Scalar cost of one communication phase. The per-link tallies the phase
/// deposits accumulate in the run [`Scratch`], not here.
#[derive(Debug, Clone, Copy, Default)]
struct PhaseCost {
    seconds: f64,
    /// Share of `seconds` spent in the serialized container-bridge path
    /// (already included in `seconds`; recorded as a nested trace span).
    bridge_s: f64,
    inter_msgs: u64,
    intra_msgs: u64,
    inter_bytes: u64,
}

impl PhaseCost {
    fn accumulate(&mut self, other: PhaseCost) {
        self.seconds += other.seconds;
        self.bridge_s += other.bridge_s;
        self.inter_msgs += other.inter_msgs;
        self.intra_msgs += other.intra_msgs;
        self.inter_bytes += other.inter_bytes;
    }

    fn times(mut self, k: u64) -> PhaseCost {
        self.seconds *= k as f64;
        self.bridge_s *= k as f64;
        self.inter_msgs *= k;
        self.intra_msgs *= k;
        self.inter_bytes *= k;
        self
    }
}

/// Pooled per-run working state: the round being counted (per-node message
/// tallies + the fluid link schedule), the current phase's per-link
/// accumulators, and the whole run's per-link accumulators.
#[derive(Debug)]
struct Scratch {
    /// Fluid schedule of the round being counted.
    sched: LinkSchedule,
    /// Outbound inter-node messages per source node, this round.
    out: Vec<u32>,
    /// Intra-node messages per node, this round.
    intra: Vec<u32>,
    total_cut: u64,
    total_intra: u64,
    /// Per-link busy seconds deposited by the current phase.
    phase_busy: Vec<f64>,
    /// Per-link payload bytes deposited by the current phase.
    phase_bytes: Vec<u64>,
    /// Per-link busy seconds over the whole run.
    link_busy: Vec<f64>,
    /// Per-link payload bytes over the whole run.
    link_bytes: Vec<u64>,
}

impl Default for Scratch {
    fn default() -> Scratch {
        Scratch {
            sched: LinkSchedule::new(0),
            out: Vec::new(),
            intra: Vec::new(),
            total_cut: 0,
            total_intra: 0,
            phase_busy: Vec::new(),
            phase_bytes: Vec::new(),
            link_busy: Vec::new(),
            link_bytes: Vec::new(),
        }
    }
}

impl Scratch {
    /// Size for this plan and zero everything, keeping allocations.
    fn reset(&mut self, links: usize, nodes: usize) {
        if self.sched.busy_s().len() == links {
            self.sched.reset();
        } else {
            self.sched = LinkSchedule::new(links);
        }
        self.out.clear();
        self.out.resize(nodes, 0);
        self.intra.clear();
        self.intra.resize(nodes, 0);
        self.total_cut = 0;
        self.total_intra = 0;
        self.phase_busy.clear();
        self.phase_busy.resize(links, 0.0);
        self.phase_bytes.clear();
        self.phase_bytes.resize(links, 0);
        self.link_busy.clear();
        self.link_busy.resize(links, 0.0);
        self.link_bytes.clear();
        self.link_bytes.resize(links, 0);
    }

    /// Start counting a fresh communication round.
    fn begin_round(&mut self) {
        self.out.fill(0);
        self.intra.fill(0);
        self.total_cut = 0;
        self.total_intra = 0;
        self.sched.reset();
    }

    /// Multiply the current phase's link tallies by a repeat count.
    fn scale_phase(&mut self, k: u64) {
        let kf = k as f64;
        for b in &mut self.phase_busy {
            *b *= kf;
        }
        for b in &mut self.phase_bytes {
            *b *= k;
        }
    }
}

/// The analytic engine.
#[derive(Debug, Clone)]
pub struct AnalyticEngine {
    /// Node hardware.
    pub node: NodeSpec,
    /// Effective network (fabric × stack × data path).
    pub network: NetworkModel,
    /// Rank placement.
    pub map: RankMap,
    /// Engine knobs.
    pub config: EngineConfig,
    routes: Arc<RouteTable>,
    scratch: ScratchPool<Scratch>,
}

impl AnalyticEngine {
    /// Build an engine, deriving the route table from the placement and
    /// network. Prefer [`AnalyticEngine::with_routes`] when another engine
    /// shares the same plan — the table is built once per plan, not per
    /// engine.
    pub fn new(
        node: NodeSpec,
        network: NetworkModel,
        map: RankMap,
        config: EngineConfig,
    ) -> AnalyticEngine {
        let routes = Arc::new(route_table(&map, &network));
        AnalyticEngine::with_routes(node, network, map, config, routes)
    }

    /// Build an engine over an already-built route table.
    pub fn with_routes(
        node: NodeSpec,
        network: NetworkModel,
        map: RankMap,
        config: EngineConfig,
        routes: Arc<RouteTable>,
    ) -> AnalyticEngine {
        assert_eq!(
            routes.ranks(),
            map.ranks(),
            "route table must match placement"
        );
        AnalyticEngine {
            node,
            network,
            map,
            config,
            routes,
            scratch: ScratchPool::new(),
        }
    }

    /// The route table all inter-node costs derive from.
    pub fn routes(&self) -> &Arc<RouteTable> {
        &self.routes
    }

    /// Execute `job` and return timing + traffic accounting. `seed` drives
    /// the run-to-run jitter the paper averages away.
    pub fn run(&self, job: &JobProfile, seed: u64) -> SimResult {
        self.run_traced(job, seed, &mut Recorder::aggregating())
    }

    /// Execute `job`, emitting the closed-form timeline as spans through
    /// `rec` (one track, bulk-synchronous: compute and phase spans strictly
    /// alternate). The timing and breakdown in the returned [`SimResult`]
    /// are *derived from* the recorded spans; with a disabled recorder
    /// `elapsed` and traffic counters are still exact but `compute`/`comm`
    /// attribution comes out zero.
    pub fn run_traced(&self, job: &JobProfile, seed: u64, rec: &mut Recorder) -> SimResult {
        let mut rng = RngStream::new(seed).derive("analytic-run");
        // one multiplicative run-to-run factor (machine state, turbo, ...)
        let run_factor = rng.lognormal_factor(0.004);

        let mut local = Recorder::like(rec);
        local.declare_tracks(1);
        let mut t = SimTime::ZERO;
        let mut inter_msgs = 0u64;
        let mut intra_msgs = 0u64;
        let mut inter_bytes = 0u64;
        let nlinks = self.routes.graph().len();
        let mut s = self.scratch.take().unwrap_or_default();
        s.reset(nlinks, self.map.nodes as usize);

        for (step, reps) in &job.steps {
            let reps = *reps as u64;
            let compute_d = SimDuration::from_secs_f64(
                self.step_compute_seconds(step) * reps as f64 * run_factor,
            );
            local.span(SpanCategory::Compute, "solver-compute", 0, t, t + compute_d);
            t += compute_d;
            for phase in &step.comm {
                let (cost, cat, name) = self.phase_cost(&mut s, phase);
                let cost = cost.times(reps);
                s.scale_phase(reps);
                inter_msgs += cost.inter_msgs;
                intra_msgs += cost.intra_msgs;
                inter_bytes += cost.inter_bytes;
                // per-link tallies stay structural (no jitter): they report
                // what the fabric carried, not when
                for i in 0..nlinks {
                    s.link_busy[i] += s.phase_busy[i];
                    s.link_bytes[i] += s.phase_bytes[i];
                }
                let d = SimDuration::from_secs_f64(cost.seconds * run_factor);
                local.span(cat, name, 0, t, t + d);
                if cost.bridge_s > 0.0 {
                    // nested inside the phase span: the serialized bridge
                    // share, already part of `d` — informational only
                    let bd = SimDuration::from_secs_f64(cost.bridge_s * run_factor);
                    local.span(SpanCategory::Bridge, "bridge-serialization", 0, t, t + bd);
                }
                t += d;
            }
        }

        let links = if inter_bytes > 0 {
            let g = self.routes.graph();
            (0..g.len())
                .map(|i| LinkUsage {
                    label: g.label(LinkId(i as u32)),
                    busy_s: s.link_busy[i],
                    bytes: s.link_bytes[i],
                })
                .collect()
        } else {
            Vec::new()
        };
        let result = SimResult {
            elapsed: t - SimTime::ZERO,
            compute: local.rollup().max_track(SpanCategory::Compute),
            comm: CommBreakdown::from_trace(local.rollup()),
            inter_node_msgs: inter_msgs,
            intra_node_msgs: intra_msgs,
            inter_node_bytes: inter_bytes,
            links,
            engine: "analytic",
        };
        rec.merge(local);
        self.scratch.put(s);
        result
    }

    /// Compute time of the slowest rank in one step.
    fn step_compute_seconds(&self, step: &StepProfile) -> f64 {
        let p = self.map.ranks().max(2) as f64;
        let noise_amplification = 1.0 + self.config.jitter_sigma * (2.0 * p.ln()).sqrt();
        let worst_rank_flops =
            step.flops_per_rank * step.imbalance * self.config.compute_tax * noise_amplification;
        self.node
            .rank_compute_seconds(worst_rank_flops, self.map.threads_per_rank, step.regions)
    }

    /// Cost one phase. On return the phase's per-link tallies sit in
    /// `s.phase_busy` / `s.phase_bytes` (including any internal repeat
    /// multipliers); the caller applies the step repeat count and folds
    /// them into the run accumulators.
    fn phase_cost(
        &self,
        s: &mut Scratch,
        phase: &CommPhase,
    ) -> (PhaseCost, SpanCategory, &'static str) {
        s.phase_busy.fill(0.0);
        s.phase_bytes.fill(0);
        match phase {
            CommPhase::Halo1D { bytes, repeats } => {
                let c = self.halo_cost(s, *bytes);
                s.scale_phase(*repeats as u64);
                (c.times(*repeats as u64), SpanCategory::Halo, "halo1d")
            }
            CommPhase::Halo3D {
                dims,
                bytes,
                repeats,
            } => {
                let c = self.halo3d_cost(s, *dims, *bytes);
                s.scale_phase(*repeats as u64);
                (c.times(*repeats as u64), SpanCategory::Halo, "halo3d")
            }
            CommPhase::Allreduce { bytes, repeats } => {
                let c = self.allreduce_cost(s, *bytes);
                s.scale_phase(*repeats as u64);
                (
                    c.times(*repeats as u64),
                    SpanCategory::Allreduce,
                    "allreduce",
                )
            }
            CommPhase::Pairs { pairs, bytes } => (
                self.pairs_cost(s, pairs, *bytes),
                SpanCategory::Pairs,
                "pairs",
            ),
            CommPhase::Bcast { bytes } => {
                (self.bcast_cost(s, *bytes), SpanCategory::Other, "bcast")
            }
            CommPhase::Gather { bytes_per_rank } => (
                self.gather_cost(s, *bytes_per_rank),
                SpanCategory::Other,
                "gather",
            ),
            CommPhase::Barrier => (self.barrier_cost(s), SpanCategory::Other, "barrier"),
        }
    }

    /// Deposit one message on the round being counted in `s`.
    fn round_add(&self, s: &mut Scratch, src: u32, dst: u32, bytes: u64) {
        let route = self.routes.route(src, dst);
        let n = self.routes.node_of(src) as usize;
        if route.is_local() {
            s.intra[n] += 1;
            s.total_intra += 1;
        } else {
            s.out[n] += 1;
            s.total_cut += 1;
            s.sched.add(self.routes.graph(), &route, bytes);
        }
    }

    /// Cost the round counted in `s`, scaled by `mult` identical repeats,
    /// and fold its link tallies (×`mult`) into the phase accumulators.
    ///
    /// The inter-node part is LogGP alpha + the schedule's busiest-link
    /// drain time + the longest route's switch latency; the intra-node part
    /// shares the node pipe; the two overlap. The serialized
    /// container-bridge term (every message of the busiest node queuing
    /// through one softirq path) does not overlap with either.
    fn round_cost(&self, s: &mut Scratch, bytes: u64, mult: u64) -> PhaseCost {
        let out_max = s.out.iter().copied().max().unwrap_or(0);
        let intra_max = s.intra.iter().copied().max().unwrap_or(0);
        let mut seconds: f64 = 0.0;
        if s.total_cut > 0 {
            let t = self.network.inter.alpha_seconds(bytes)
                + s.sched.wire_seconds()
                + s.sched.max_latency_s();
            seconds = seconds.max(t);
        }
        if intra_max > 0 {
            let intra = &self.network.intra;
            let t =
                intra.alpha_seconds(bytes) + intra_max as f64 * bytes as f64 / intra.bandwidth_bps;
            seconds = seconds.max(t);
        }
        let serialized =
            self.network.node_serialized_per_msg_s * (out_max as f64 + intra_max as f64);
        seconds += serialized;
        let mf = mult as f64;
        for (pb, &b) in s.phase_busy.iter_mut().zip(s.sched.busy_s()) {
            *pb += b * mf;
        }
        for (pb, &b) in s.phase_bytes.iter_mut().zip(s.sched.bytes()) {
            *pb += b * mult;
        }
        PhaseCost {
            seconds,
            bridge_s: serialized,
            inter_msgs: s.total_cut,
            intra_msgs: s.total_intra,
            inter_bytes: s.total_cut * bytes,
        }
        .times(mult)
    }

    fn halo_cost(&self, s: &mut Scratch, bytes: u64) -> PhaseCost {
        let p = self.map.ranks();
        if p <= 1 {
            return PhaseCost::default();
        }
        // directed messages along the chain: r -> r+1 and r+1 -> r
        s.begin_round();
        for r in 0..p - 1 {
            self.round_add(s, r, r + 1, bytes);
            self.round_add(s, r + 1, r, bytes);
        }
        self.round_cost(s, bytes, 1)
    }

    fn halo3d_cost(&self, s: &mut Scratch, dims: (u32, u32, u32), bytes: u64) -> PhaseCost {
        let p = self.map.ranks();
        debug_assert_eq!(
            dims.0 * dims.1 * dims.2,
            p,
            "rank grid must cover all ranks"
        );
        if p <= 1 {
            return PhaseCost::default();
        }
        s.begin_round();
        for r in 0..p {
            for nb in crate::workload::grid_neighbors(r, dims) {
                self.round_add(s, r, nb, bytes);
            }
        }
        self.round_cost(s, bytes, 1)
    }

    /// One pairwise-exchange round at XOR distance `dist`, ×`mult`.
    fn pairwise_round_cost(&self, s: &mut Scratch, dist: u32, bytes: u64, mult: u64) -> PhaseCost {
        let p = self.map.ranks();
        s.begin_round();
        for r in 0..p {
            let partner = r ^ dist;
            if partner < p {
                self.round_add(s, r, partner, bytes);
            }
        }
        self.round_cost(s, bytes, mult)
    }

    fn allreduce_cost(&self, s: &mut Scratch, bytes: u64) -> PhaseCost {
        let p = self.map.ranks();
        if p <= 1 {
            return PhaseCost::default();
        }
        let mut total = PhaseCost::default();
        match self.config.allreduce_algo {
            AllreduceAlgo::RecursiveDoubling => {
                for k in 0..log2_rounds(p) {
                    total.accumulate(self.pairwise_round_cost(s, 1 << k, bytes, 1));
                }
            }
            AllreduceAlgo::Ring => {
                // every round identical: ring neighbour sends of bytes/p
                let chunk = bytes.div_ceil(p as u64).max(1);
                s.begin_round();
                for r in 0..p {
                    self.round_add(s, r, (r + 1) % p, chunk);
                }
                let rounds = 2 * (p as u64 - 1);
                total.accumulate(self.round_cost(s, chunk, rounds));
            }
            AllreduceAlgo::Rabenseifner => {
                for k in 0..log2_rounds(p) {
                    let vol = (bytes >> (k + 1)).max(1);
                    // reduce-scatter + mirrored allgather round
                    total.accumulate(self.pairwise_round_cost(s, 1 << k, vol, 2));
                }
            }
        }
        total
    }

    fn pairs_cost(&self, s: &mut Scratch, pairs: &[(u32, u32)], bytes: u64) -> PhaseCost {
        if pairs.is_empty() {
            return PhaseCost::default();
        }
        s.begin_round();
        for &(a, b) in pairs {
            self.round_add(s, a, b, bytes);
            self.round_add(s, b, a, bytes);
        }
        self.round_cost(s, bytes, 1)
    }

    fn bcast_cost(&self, s: &mut Scratch, bytes: u64) -> PhaseCost {
        let p = self.map.ranks();
        if p <= 1 {
            return PhaseCost::default();
        }
        // cost the actual binomial rounds: structural message accounting
        // matches the DES engine exactly
        let mut total = PhaseCost::default();
        for round in crate::collectives::bcast_rounds(p, bytes) {
            s.begin_round();
            for m in &round {
                self.round_add(s, m.src, m.dst, bytes);
            }
            total.accumulate(self.round_cost(s, bytes, 1));
        }
        total
    }

    fn gather_cost(&self, s: &mut Scratch, bytes_per_rank: u64) -> PhaseCost {
        let p = self.map.ranks();
        if p <= 1 {
            return PhaseCost::default();
        }
        // everyone sends to rank 0; the root's downlink serializes the incast
        s.begin_round();
        for r in 1..p {
            self.round_add(s, r, 0, bytes_per_rank);
        }
        self.round_cost(s, bytes_per_rank, 1)
    }

    fn barrier_cost(&self, s: &mut Scratch) -> PhaseCost {
        let p = self.map.ranks();
        if p <= 1 {
            return PhaseCost::default();
        }
        let mut total = PhaseCost::default();
        for k in 0..log2_rounds(p) {
            let dist = 1u32 << k;
            // dissemination round: r -> (r + dist) % p
            s.begin_round();
            for r in 0..p {
                self.round_add(s, r, (r + dist) % p, 8);
            }
            total.accumulate(self.round_cost(s, 8, 1));
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::StepProfile;
    use harborsim_hw::{CpuModel, InterconnectKind, NodeSpec};
    use harborsim_net::{DataPath, Topology, TransportSelection};

    fn engine(nodes: u32, rpn: u32, threads: u32, path: DataPath) -> AnalyticEngine {
        AnalyticEngine::new(
            NodeSpec::dual_socket(CpuModel::xeon_e5_2697v3(), 128),
            NetworkModel::compose(
                InterconnectKind::GigabitEthernet,
                TransportSelection::Native,
                path,
                Topology::small_cluster(),
            ),
            RankMap::block(nodes, rpn, threads),
            EngineConfig::default(),
        )
    }

    fn cfd_like_step() -> StepProfile {
        StepProfile {
            flops_per_rank: 4e8,
            imbalance: 1.03,
            regions: 35.0,
            comm: vec![
                CommPhase::Halo1D {
                    bytes: 160_000,
                    repeats: 31,
                },
                CommPhase::Allreduce {
                    bytes: 8,
                    repeats: 62,
                },
            ],
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let e = engine(4, 28, 1, DataPath::Host);
        let job = JobProfile::uniform(cfd_like_step(), 10);
        let a = e.run(&job, 7);
        let b = e.run(&job, 7);
        assert_eq!(a, b);
        let c = e.run(&job, 8);
        assert_ne!(a.elapsed, c.elapsed, "different seeds must jitter");
        // ... but only slightly
        let rel =
            (a.elapsed.as_secs_f64() - c.elapsed.as_secs_f64()).abs() / a.elapsed.as_secs_f64();
        assert!(rel < 0.05, "rel={rel}");
    }

    #[test]
    fn repeated_runs_reuse_pooled_scratch() {
        let e = engine(4, 28, 1, DataPath::Host);
        let job = JobProfile::uniform(cfd_like_step(), 10);
        let first = e.run(&job, 3);
        assert_eq!(e.scratch.idle(), 1, "run must return its scratch");
        for _ in 0..3 {
            assert_eq!(e.run(&job, 3), first, "pooled scratch must not leak state");
        }
        assert_eq!(e.scratch.idle(), 1);
    }

    #[test]
    fn docker_bridge_slower_than_host() {
        let job = JobProfile::uniform(cfd_like_step(), 10);
        let host = engine(4, 28, 1, DataPath::Host).run(&job, 1);
        let dock = engine(4, 28, 1, DataPath::docker_default_bridge()).run(&job, 1);
        assert!(
            dock.elapsed > host.elapsed,
            "docker {} vs host {}",
            dock.elapsed,
            host.elapsed
        );
        assert_eq!(host.compute, dock.compute, "bridge must not touch compute");
    }

    #[test]
    fn docker_penalty_grows_with_ranks() {
        // the Fig. 1 mechanism: same 112 cores, more ranks -> bigger bridge tax
        let job = JobProfile::uniform(cfd_like_step(), 10);
        let rel = |rpn: u32, threads: u32| {
            let host = engine(4, rpn, threads, DataPath::Host).run(&job, 1);
            let dock = engine(4, rpn, threads, DataPath::docker_default_bridge()).run(&job, 1);
            dock.elapsed.as_secs_f64() / host.elapsed.as_secs_f64()
        };
        let low = rel(2, 14);
        let high = rel(28, 1);
        assert!(
            high > low,
            "docker relative cost must grow with ranks: 2x14 -> {low}, 28x1 -> {high}"
        );
    }

    #[test]
    fn single_node_has_no_inter_traffic() {
        let e = engine(1, 28, 1, DataPath::Host);
        let job = JobProfile::uniform(cfd_like_step(), 5);
        let r = e.run(&job, 1);
        assert_eq!(r.inter_node_msgs, 0);
        assert_eq!(r.inter_node_bytes, 0);
        assert!(r.intra_node_msgs > 0);
        assert!(r.links.is_empty(), "no fabric traffic, no link table");
    }

    #[test]
    fn message_accounting_matches_structure() {
        let e = engine(4, 2, 1, DataPath::Host);
        let step = StepProfile {
            flops_per_rank: 0.0,
            imbalance: 1.0,
            regions: 0.0,
            comm: vec![CommPhase::Halo1D {
                bytes: 1000,
                repeats: 1,
            }],
        };
        let r = e.run(&JobProfile::uniform(step, 1), 1);
        // chain 0-1 | 2-3 | 4-5 | 6-7 over 4 nodes: cut edges at 1-2, 3-4,
        // 5-6 -> 6 directed inter msgs; intra edges 0-1,2-3,4-5,6-7 -> 8
        assert_eq!(r.inter_node_msgs, 6);
        assert_eq!(r.intra_node_msgs, 8);
        assert_eq!(r.inter_node_bytes, 6000);
        // every cut byte shows up exactly once on some node uplink
        let up_bytes: u64 = r
            .links
            .iter()
            .filter(|l| l.label.ends_with(":up") && l.label.starts_with("node"))
            .map(|l| l.bytes)
            .sum();
        assert_eq!(up_bytes, 6000);
    }

    #[test]
    fn allreduce_algorithms_tradeoff() {
        // tiny payload: recursive doubling must beat ring
        let mk = |algo| {
            let mut e = engine(4, 28, 1, DataPath::Host);
            e.config.allreduce_algo = algo;
            let step = StepProfile {
                flops_per_rank: 0.0,
                imbalance: 1.0,
                regions: 0.0,
                comm: vec![CommPhase::Allreduce {
                    bytes: 8,
                    repeats: 1,
                }],
            };
            e.run(&JobProfile::uniform(step, 1), 1)
                .elapsed
                .as_secs_f64()
        };
        let rd = mk(AllreduceAlgo::RecursiveDoubling);
        let ring = mk(AllreduceAlgo::Ring);
        assert!(ring > 5.0 * rd, "ring {ring} vs recursive-doubling {rd}");
    }

    #[test]
    fn strong_scaling_reduces_elapsed() {
        // fixed total work spread over more nodes must run faster (until
        // comm dominates; with these parameters 16 nodes is still faster)
        let total_flops = 5e11;
        let t = |nodes: u32| {
            let e = engine(nodes, 28, 1, DataPath::Host);
            let step = StepProfile {
                flops_per_rank: total_flops / (nodes as f64 * 28.0),
                imbalance: 1.02,
                regions: 10.0,
                comm: vec![CommPhase::Allreduce {
                    bytes: 8,
                    repeats: 4,
                }],
            };
            e.run(&JobProfile::uniform(step, 10), 1)
                .elapsed
                .as_secs_f64()
        };
        // Lenox only has 4 nodes, but the engine doesn't enforce that
        let t1 = t(1);
        let t2 = t(2);
        let t4 = t(4);
        assert!(t2 < t1 && t4 < t2, "t1={t1} t2={t2} t4={t4}");
    }

    #[test]
    fn threads_vs_ranks_tradeoff_visible() {
        // same cores, different split: both must be within 2x of each other
        // and both slower than zero-comm ideal
        let job = JobProfile::uniform(cfd_like_step(), 10);
        let hybrid = engine(4, 2, 14, DataPath::Host).run(&job, 1);
        let pure = engine(4, 28, 1, DataPath::Host).run(&job, 1);
        let ratio = hybrid.elapsed.as_secs_f64() / pure.elapsed.as_secs_f64();
        assert!(ratio > 0.3 && ratio < 3.0, "ratio={ratio}");
    }

    #[test]
    fn oversubscribed_spine_tops_utilization() {
        // a heavily tapered fat tree under an all-cross-leaf exchange: the
        // spine links, not any NIC, must be the busiest rows of the table
        let e = AnalyticEngine::new(
            NodeSpec::dual_socket(CpuModel::xeon_platinum_8160(), 96),
            NetworkModel::compose(
                InterconnectKind::OmniPath100,
                TransportSelection::Native,
                DataPath::Host,
                Topology::FatTree {
                    nodes_per_leaf: 4,
                    hop_latency_s: 0.15e-6,
                    taper: 0.1,
                },
            ),
            RankMap::block(8, 4, 1),
            EngineConfig::default(),
        );
        let step = StepProfile {
            flops_per_rank: 0.0,
            imbalance: 1.0,
            regions: 0.0,
            comm: vec![CommPhase::Allreduce {
                bytes: 1 << 20,
                repeats: 1,
            }],
        };
        let r = e.run(&JobProfile::uniform(step, 1), 1);
        let busiest = r
            .links
            .iter()
            .max_by(|a, b| a.busy_s.total_cmp(&b.busy_s))
            .unwrap();
        assert!(
            busiest.label.contains("spine"),
            "busiest link should be a spine link, got {}",
            busiest.label
        );
    }
}
