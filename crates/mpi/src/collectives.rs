//! Collective-operation algorithms: round structures shared by both engines.
//!
//! A collective is described as a list of *rounds*; within a round every
//! listed message can fly concurrently, and rounds execute back-to-back.
//! The DES engine materializes each message; the analytic engine costs each
//! round with a closed form. Keeping one source of truth for the round
//! structure is what makes the two engines cross-validate.

/// A directed message within a collective round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundMsg {
    /// Sending rank.
    pub src: u32,
    /// Receiving rank.
    pub dst: u32,
    /// Payload bytes.
    pub bytes: u64,
}

/// One round: messages that may all be in flight simultaneously.
pub type Round = Vec<RoundMsg>;

/// Allreduce algorithm choice (the ablation of DESIGN.md §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllreduceAlgo {
    /// Recursive doubling: `ceil(log2 p)` rounds of full-size pairwise
    /// exchanges. Optimal for small payloads (latency-bound) — MPI
    /// libraries pick it for the 8-byte dot products that dominate Alya.
    #[default]
    RecursiveDoubling,
    /// Ring: `2(p-1)` rounds of `bytes/p` neighbour messages. Bandwidth
    /// optimal for large payloads, latency-catastrophic for small ones.
    Ring,
    /// Rabenseifner: reduce-scatter + allgather, `2·ceil(log2 p)` rounds of
    /// geometrically shrinking/growing payloads. Good middle ground.
    Rabenseifner,
}

/// Messages of a full pairwise-exchange round at distance `2^k`
/// (both directions of every pair).
fn pairwise_round(p: u32, k: u32, bytes: u64) -> Round {
    let dist = 1u32 << k;
    let mut msgs = Vec::new();
    for r in 0..p {
        let partner = r ^ dist;
        if partner < p {
            msgs.push(RoundMsg {
                src: r,
                dst: partner,
                bytes,
            });
        }
    }
    msgs
}

/// Number of rounds of a log-structured collective over `p` ranks.
pub fn log2_rounds(p: u32) -> u32 {
    if p <= 1 {
        0
    } else {
        32 - (p - 1).leading_zeros()
    }
}

/// The round plan of one allreduce of `bytes` over `p` ranks.
pub fn allreduce_rounds(algo: AllreduceAlgo, p: u32, bytes: u64) -> Vec<Round> {
    if p <= 1 {
        return Vec::new();
    }
    match algo {
        AllreduceAlgo::RecursiveDoubling => (0..log2_rounds(p))
            .map(|k| pairwise_round(p, k, bytes))
            .collect(),
        AllreduceAlgo::Ring => {
            // reduce-scatter then allgather around the ring; 2(p-1) rounds
            // of bytes/p each, every rank sending to its right neighbour
            let chunk = bytes.div_ceil(p as u64).max(1);
            (0..2 * (p - 1))
                .map(|_| {
                    (0..p)
                        .map(|r| RoundMsg {
                            src: r,
                            dst: (r + 1) % p,
                            bytes: chunk,
                        })
                        .collect()
                })
                .collect()
        }
        AllreduceAlgo::Rabenseifner => {
            let rounds = log2_rounds(p);
            let mut plan = Vec::with_capacity(2 * rounds as usize);
            // reduce-scatter: volumes halve each round
            for k in 0..rounds {
                let vol = (bytes >> (k + 1)).max(1);
                plan.push(pairwise_round(p, k, vol));
            }
            // allgather: volumes double back
            for k in (0..rounds).rev() {
                let vol = (bytes >> (k + 1)).max(1);
                plan.push(pairwise_round(p, k, vol));
            }
            plan
        }
    }
}

/// Binomial-tree broadcast from rank 0: round `k` has ranks `< 2^k` sending
/// to `rank + 2^k`.
pub fn bcast_rounds(p: u32, bytes: u64) -> Vec<Round> {
    if p <= 1 {
        return Vec::new();
    }
    (0..log2_rounds(p))
        .map(|k| {
            let dist = 1u32 << k;
            (0..dist.min(p))
                .filter(|r| r + dist < p)
                .map(|r| RoundMsg {
                    src: r,
                    dst: r + dist,
                    bytes,
                })
                .collect()
        })
        .collect()
}

/// Dissemination barrier: round `k` has every rank sending 8 bytes to
/// `(rank + 2^k) mod p`.
pub fn barrier_rounds(p: u32) -> Vec<Round> {
    if p <= 1 {
        return Vec::new();
    }
    (0..log2_rounds(p))
        .map(|k| {
            let dist = 1u32 << k;
            (0..p)
                .map(|r| RoundMsg {
                    src: r,
                    dst: (r + dist) % p,
                    bytes: 8,
                })
                .collect()
        })
        .collect()
}

/// Linear gather to rank 0: a single "round" of everyone sending to root
/// (the root serializes reception on its NIC, which both engines model).
pub fn gather_rounds(p: u32, bytes_per_rank: u64) -> Vec<Round> {
    if p <= 1 {
        return Vec::new();
    }
    vec![(1..p)
        .map(|r| RoundMsg {
            src: r,
            dst: 0,
            bytes: bytes_per_rank,
        })
        .collect()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn log2_rounds_values() {
        assert_eq!(log2_rounds(1), 0);
        assert_eq!(log2_rounds(2), 1);
        assert_eq!(log2_rounds(8), 3);
        assert_eq!(log2_rounds(9), 4);
        assert_eq!(log2_rounds(112), 7);
        assert_eq!(log2_rounds(12_288), 14);
    }

    #[test]
    fn recursive_doubling_power_of_two_is_complete() {
        let rounds = allreduce_rounds(AllreduceAlgo::RecursiveDoubling, 8, 64);
        assert_eq!(rounds.len(), 3);
        for round in &rounds {
            // every rank appears exactly once as src and once as dst
            let srcs: HashSet<u32> = round.iter().map(|m| m.src).collect();
            let dsts: HashSet<u32> = round.iter().map(|m| m.dst).collect();
            assert_eq!(srcs.len(), 8);
            assert_eq!(dsts.len(), 8);
            for m in round {
                assert_eq!(m.bytes, 64);
            }
        }
    }

    #[test]
    fn recursive_doubling_nonpower_skips_out_of_range() {
        let rounds = allreduce_rounds(AllreduceAlgo::RecursiveDoubling, 6, 8);
        assert_eq!(rounds.len(), 3);
        for round in &rounds {
            for m in round {
                assert!(m.src < 6 && m.dst < 6);
            }
        }
    }

    #[test]
    fn ring_round_count_and_volume() {
        let p = 8;
        let bytes = 800;
        let rounds = allreduce_rounds(AllreduceAlgo::Ring, p, bytes);
        assert_eq!(rounds.len() as u32, 2 * (p - 1));
        let per_round_bytes = rounds[0][0].bytes;
        assert_eq!(per_round_bytes, 100);
        // total volume per rank: 2(p-1) * bytes/p ~ 2*bytes*(p-1)/p
        let total: u64 = rounds.iter().map(|r| r[0].bytes).sum();
        assert_eq!(total, 1400);
    }

    #[test]
    fn rabenseifner_volume_shrinks_then_grows() {
        let rounds = allreduce_rounds(AllreduceAlgo::Rabenseifner, 8, 1024);
        assert_eq!(rounds.len(), 6);
        let vols: Vec<u64> = rounds.iter().map(|r| r[0].bytes).collect();
        assert_eq!(vols, vec![512, 256, 128, 128, 256, 512]);
    }

    #[test]
    fn bcast_reaches_everyone_exactly_once() {
        for p in [2u32, 5, 8, 13, 48] {
            let rounds = bcast_rounds(p, 100);
            let mut reached: HashSet<u32> = HashSet::from([0]);
            for round in &rounds {
                for m in round {
                    assert!(
                        reached.contains(&m.src),
                        "p={p}: rank {} sends before it has the data",
                        m.src
                    );
                    assert!(
                        reached.insert(m.dst),
                        "p={p}: duplicate delivery to {}",
                        m.dst
                    );
                }
            }
            assert_eq!(reached.len() as u32, p, "p={p}");
        }
    }

    #[test]
    fn barrier_rounds_wrap_around() {
        let rounds = barrier_rounds(5);
        assert_eq!(rounds.len(), 3);
        for round in &rounds {
            assert_eq!(round.len(), 5);
        }
        // round 2: distance 4 wraps: rank 1 -> rank 0
        assert!(rounds[2].iter().any(|m| m.src == 1 && m.dst == 0));
    }

    #[test]
    fn gather_is_everyone_to_root() {
        let rounds = gather_rounds(6, 48);
        assert_eq!(rounds.len(), 1);
        assert_eq!(rounds[0].len(), 5);
        assert!(rounds[0].iter().all(|m| m.dst == 0 && m.bytes == 48));
    }

    /// The closed-form per-rank byte total each algorithm promises; the
    /// round plans must conserve it exactly. Pairwise algorithms exchange
    /// symmetrically (r sends to `r^2^k` iff that partner exists, which
    /// also sends back), so sent and received totals coincide per rank.
    fn closed_form_bytes(algo: AllreduceAlgo, p: u32, r: u32, bytes: u64) -> u64 {
        let partnered = |k: u32| r ^ (1u32 << k) < p;
        match algo {
            AllreduceAlgo::RecursiveDoubling => {
                bytes * (0..log2_rounds(p)).filter(|&k| partnered(k)).count() as u64
            }
            AllreduceAlgo::Ring => 2 * u64::from(p - 1) * bytes.div_ceil(u64::from(p)).max(1),
            AllreduceAlgo::Rabenseifner => {
                2 * (0..log2_rounds(p))
                    .filter(|&k| partnered(k))
                    .map(|k| (bytes >> (k + 1)).max(1))
                    .sum::<u64>()
            }
        }
    }

    #[test]
    fn per_rank_byte_totals_match_closed_forms() {
        for p in 2..=64u32 {
            for bytes in [8u64, 1000, 1 << 20] {
                for algo in [
                    AllreduceAlgo::RecursiveDoubling,
                    AllreduceAlgo::Ring,
                    AllreduceAlgo::Rabenseifner,
                ] {
                    let mut sent = vec![0u64; p as usize];
                    let mut recv = vec![0u64; p as usize];
                    for round in allreduce_rounds(algo, p, bytes) {
                        for m in round {
                            sent[m.src as usize] += m.bytes;
                            recv[m.dst as usize] += m.bytes;
                        }
                    }
                    for r in 0..p {
                        let want = closed_form_bytes(algo, p, r, bytes);
                        assert_eq!(
                            sent[r as usize], want,
                            "{algo:?} p={p} bytes={bytes} rank {r}: sent"
                        );
                        assert_eq!(
                            recv[r as usize], want,
                            "{algo:?} p={p} bytes={bytes} rank {r}: received"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn single_rank_collectives_are_free() {
        assert!(allreduce_rounds(AllreduceAlgo::RecursiveDoubling, 1, 8).is_empty());
        assert!(bcast_rounds(1, 8).is_empty());
        assert!(barrier_rounds(1).is_empty());
        assert!(gather_rounds(1, 8).is_empty());
    }
}
