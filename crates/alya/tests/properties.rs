//! Property-style tests of the mini-Alya solvers, driven by deterministic
//! [`RngStream`] case generation.

use harborsim_alya::cfd::{CfdConfig, CfdSolver};
use harborsim_alya::mesh::TubeMesh;
use harborsim_alya::pulse1d::{PulseConfig, PulseSolver};
use harborsim_alya::wall::{WallConfig, WallSolver};
use harborsim_des::RngStream;

fn cases(label: &str, n: u64) -> impl Iterator<Item = RngStream> {
    let root = RngStream::new(0xA17A_0003).derive(label);
    (0..n).map(move |i| root.derive_idx(i))
}

/// The CFD solver is stable (bounded fields) for any inflow within the
/// configured stability envelope.
#[test]
fn cfd_bounded_for_stable_configs() {
    for mut rng in cases("cfd-bounded", 16) {
        let peak = rng.uniform_range(0.01, 0.2);
        let reynolds = rng.uniform_range(10.0, 80.0);
        let mesh = TubeMesh::cylinder(9, 9, 16, 3.2);
        let cfg = CfdConfig::stable(&mesh, reynolds, peak);
        let mut s = CfdSolver::new(mesh, cfg);
        s.run(15);
        let bound = 5.0 * peak;
        for &w in &s.w {
            assert!(w.is_finite() && w.abs() < bound, "w={w} bound={bound}");
        }
    }
}

/// The pulse solver preserves the rest state exactly for zero inflow,
/// regardless of resolution.
#[test]
fn pulse_rest_state_invariant() {
    for mut rng in cases("pulse-rest", 16) {
        let n = 16 + rng.below(184) as usize;
        let cfg = PulseConfig::artery(n);
        let a0 = cfg.a0;
        let mut s = PulseSolver::new(cfg, |_| 0.0);
        s.run(100);
        for &a in &s.a {
            assert!((a - a0).abs() < 1e-9);
        }
    }
}

/// The wall ODE always relaxes monotonically toward its equilibrium.
#[test]
fn wall_relaxation_monotone() {
    for mut rng in cases("wall-monotone", 16) {
        let p = rng.uniform_range(-5_000.0, 15_000.0);
        let eta = rng.uniform_range(1.0, 200.0);
        let cfg = WallConfig {
            n: 1,
            beta: 4.0e4,
            a0: 3.0,
            eta,
        };
        let mut w = WallSolver::new(cfg);
        let target = w.equilibrium_area(p);
        let mut dist = (w.a[0] - target).abs();
        for _ in 0..50 {
            w.step(&[p], 0.002);
            let d = (w.a[0] - target).abs();
            assert!(d <= dist + 1e-12, "distance must shrink: {dist} -> {d}");
            dist = d;
        }
    }
}

/// Mesh slab decomposition is a partition for every valid rank count.
#[test]
fn slabs_partition() {
    for mut rng in cases("slabs", 16) {
        let nz = 8 + rng.below(112) as usize;
        let ranks_frac = rng.uniform();
        let mesh = TubeMesh::cylinder(7, 7, nz, 2.5);
        let ranks = 1 + ((nz - 1) as f64 * ranks_frac) as usize;
        let slabs = mesh.slab_ranges(ranks);
        let covered: usize = slabs.iter().map(|(a, b)| b - a).sum();
        assert_eq!(covered, nz);
    }
}

/// Grid refinement improves the Poiseuille centreline ratio toward 2.0.
#[test]
fn poiseuille_converges_under_refinement() {
    let ratio_for = |nx: usize, r: f64| {
        let mesh = TubeMesh::cylinder(nx, nx, 40, r);
        let mut cfg = CfdConfig::stable(&mesh, 20.0, 0.08);
        cfg.cg_tol = 1e-9;
        let mut s = CfdSolver::new(mesh, cfg);
        for _ in 0..40 {
            s.run(25);
        }
        let k = s.mesh.nz / 2;
        let mean = s.mean_axial_velocity(k);
        let centre = s
            .axial_profile(k)
            .iter()
            .filter(|(rr, _)| *rr < 1.0)
            .map(|(_, w)| *w)
            .fold(0.0_f64, f64::max);
        centre / mean
    };
    let coarse = ratio_for(9, 3.2);
    let fine = ratio_for(15, 6.0);
    assert!(
        (fine - 2.0).abs() <= (coarse - 2.0).abs() + 0.05,
        "refinement must not worsen the profile: coarse {coarse:.3}, fine {fine:.3}"
    );
}
