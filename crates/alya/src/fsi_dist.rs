//! The FSI case over the functional thread MPI: two *separate codes* on
//! disjoint rank groups, exchanging interface data — exactly the process
//! structure the paper describes for the Alya FSI runs.
//!
//! Ranks `0..pairs` run the fluid code (the 1D pulse-wave solver, domain
//! decomposed along the vessel); ranks `pairs..2·pairs` run the solid code
//! (wall mechanics for the same station ranges). Every coupled step:
//!
//! 1. fluid ranks halo-exchange `(A, Q)` and advance one Lax–Wendroff
//!    trial step;
//! 2. sub-iterations: fluid sends interface pressures to its partner solid
//!    rank; the solid advances from its converged state and returns wall
//!    areas; the fluid relaxes toward them; an allreduce over *all* ranks
//!    agrees on the interface residual.
//!
//! The result is validated bit-tight against the sequential [`CoupledFsi`](crate::fsi::CoupledFsi)
//! — the decomposition changes nothing but the process count.

use crate::fsi::FsiConfig;
use crate::pulse1d::PulseConfig;
use crate::wall::{WallConfig, WallSolver};
use harborsim_mpi::thread_mpi::ThreadComm;

/// Outcome of a distributed coupled run (rank-0 gather).
#[derive(Debug, Clone)]
pub struct FsiDistResult {
    /// Fluid areas, full vessel.
    pub a: Vec<f64>,
    /// Fluid flows, full vessel.
    pub q: Vec<f64>,
    /// Wall areas, full vessel.
    pub wall_a: Vec<f64>,
    /// Total sub-iterations.
    pub subiters: u64,
}

/// Contiguous station ranges for `parts` ranks over `n` stations.
fn ranges(n: usize, parts: usize) -> Vec<(usize, usize)> {
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for r in 0..parts {
        let len = base + usize::from(r < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

#[inline]
fn flux(cfg: &PulseConfig, a: f64, q: f64) -> (f64, f64) {
    (q, q * q / a + cfg.beta / (3.0 * cfg.rho) * a.powf(1.5))
}

/// Run the coupled case on `2·pairs` ranks for `steps` steps.
///
/// # Panics
/// Panics if any fluid rank would own fewer than 2 stations, or if the
/// fluid config uses a non-extrapolating outlet (not yet decomposed).
pub fn run_coupled_distributed(
    fluid_cfg: &PulseConfig,
    eta: f64,
    coupling: &FsiConfig,
    inflow: fn(f64) -> f64,
    pairs: usize,
    steps: usize,
) -> FsiDistResult {
    assert!(pairs >= 1);
    assert!(
        fluid_cfg.n / pairs >= 2,
        "each fluid rank needs at least 2 stations"
    );
    let parts = ranges(fluid_cfg.n, pairs);
    let results = ThreadComm::run(2 * pairs, |comm| {
        if comm.rank() < pairs {
            fluid_rank(comm, fluid_cfg, coupling, inflow, &parts, pairs, steps)
        } else {
            solid_rank(comm, fluid_cfg, eta, coupling, &parts, pairs, steps)
        }
    });
    results.into_iter().next().expect("rank 0 result")
}

#[allow(clippy::too_many_arguments)]
fn fluid_rank(
    comm: &mut ThreadComm,
    cfg: &PulseConfig,
    coupling: &FsiConfig,
    inflow: fn(f64) -> f64,
    parts: &[(usize, usize)],
    pairs: usize,
    steps: usize,
) -> FsiDistResult {
    let rank = comm.rank();
    let (s0, s1) = parts[rank];
    let nloc = s1 - s0;
    let n = cfg.n;
    let partner = pairs + rank; // my solid code instance
                                // local stations + one ghost each side: local index i ↔ station s0-1+i
    let mut a = vec![cfg.a0; nloc + 2];
    let mut q = vec![0.0; nloc + 2];
    let mut time = 0.0;
    let mut subiters = 0u64;
    let mut tag = 0u32;
    let mut next_tag = move || {
        tag += 1;
        tag
    };

    for _ in 0..steps {
        // halo exchange of (a, q)
        let t = next_tag();
        if rank > 0 {
            comm.send(rank - 1, t, &[a[1], q[1]]);
        }
        if rank + 1 < pairs {
            comm.send(rank + 1, t, &[a[nloc], q[nloc]]);
        }
        if rank > 0 {
            let got = comm.recv(rank - 1, t);
            a[0] = got[0];
            q[0] = got[1];
        }
        if rank + 1 < pairs {
            let got = comm.recv(rank + 1, t);
            a[nloc + 1] = got[0];
            q[nloc + 1] = got[1];
        }

        // Lax-Wendroff trial step, exactly as the sequential solver
        let (dt, dx) = (cfg.dt, cfg.dx);
        let lam = dt / dx;
        // interface half-states between local indices i and i+1 cover the
        // stations we update
        let mut ah = vec![0.0; nloc + 1];
        let mut qh = vec![0.0; nloc + 1];
        for i in 0..=nloc {
            // stations s0-1+i and s0+i; skip interfaces outside the vessel
            let gs = s0 + i; // right station of the interface
            if gs == 0 || gs > n - 1 {
                continue;
            }
            let (fa_l, fq_l) = flux(cfg, a[i], q[i]);
            let (fa_r, fq_r) = flux(cfg, a[i + 1], q[i + 1]);
            ah[i] = 0.5 * (a[i] + a[i + 1]) - 0.5 * lam * (fa_r - fa_l);
            qh[i] = 0.5 * (q[i] + q[i + 1]) - 0.5 * lam * (fq_r - fq_l);
        }
        let mut a_new = a.clone();
        let mut q_new = q.clone();
        for i in 1..=nloc {
            let gs = s0 + i - 1; // the station local index i holds
            if gs == 0 || gs == n - 1 {
                continue; // boundary stations handled below
            }
            let (fa_l, fq_l) = flux(cfg, ah[i - 1], qh[i - 1]);
            let (fa_r, fq_r) = flux(cfg, ah[i], qh[i]);
            a_new[i] = a[i] - lam * (fa_r - fa_l);
            q_new[i] = q[i] - lam * (fq_r - fq_l) - dt * cfg.kr * q[i] / a[i];
        }
        // boundary conditions on owning ranks (extrapolating outlet only)
        if s0 == 0 {
            q_new[1] = inflow(time + dt);
            a_new[1] = a_new[2];
        }
        if s1 == n {
            // needs station n-2: local index nloc-1 (guaranteed: nloc >= 2)
            a_new[nloc] = a_new[nloc - 1];
            q_new[nloc] = q_new[nloc - 1];
        }
        a = a_new;
        q = q_new;
        time += dt;

        // coupling sub-iterations with my solid partner
        let mut used = coupling.max_subiters;
        for it in 1..=coupling.max_subiters {
            let t = next_tag();
            let a0s = cfg.a0.sqrt();
            let p_local: Vec<f64> = a[1..=nloc]
                .iter()
                .map(|av| cfg.beta * (av.sqrt() - a0s))
                .collect();
            comm.send(partner, t, &p_local);
            let wall = comm.recv(partner, t);
            let mut residual: f64 = 0.0;
            for (af, &aw) in a[1..=nloc].iter_mut().zip(&wall) {
                let r = aw - *af;
                residual = residual.max(r.abs() / aw.max(1e-12));
                *af += coupling.relaxation * r;
            }
            let global = comm.allreduce_max_scalar(residual);
            // tell the solid whether we are done (it must stay in lockstep)
            if global < coupling.tol {
                used = it;
                break;
            }
        }
        subiters += used as u64;
        // the solid commits its state; nothing to do fluid-side
    }

    // gather the full fields at rank 0
    let own: Vec<f64> = a[1..=nloc]
        .iter()
        .chain(q[1..=nloc].iter())
        .copied()
        .collect();
    let gathered = comm.gather(&own);
    if let Some(all) = gathered {
        let mut full_a = Vec::with_capacity(n);
        let mut full_q = Vec::with_capacity(n);
        let mut full_wall = Vec::with_capacity(n);
        for (r, part) in all.iter().enumerate() {
            if r < pairs {
                let m = part.len() / 2;
                full_a.extend(&part[..m]);
                full_q.extend(&part[m..]);
            } else {
                full_wall.extend(part.iter());
            }
        }
        FsiDistResult {
            a: full_a,
            q: full_q,
            wall_a: full_wall,
            subiters,
        }
    } else {
        FsiDistResult {
            a: Vec::new(),
            q: Vec::new(),
            wall_a: Vec::new(),
            subiters,
        }
    }
}

fn solid_rank(
    comm: &mut ThreadComm,
    fluid_cfg: &PulseConfig,
    eta: f64,
    coupling: &FsiConfig,
    parts: &[(usize, usize)],
    pairs: usize,
    steps: usize,
) -> FsiDistResult {
    let rank = comm.rank();
    let fluid_partner = rank - pairs;
    let (s0, s1) = parts[fluid_partner];
    let nloc = s1 - s0;
    let mut wall = WallSolver::new(WallConfig {
        n: nloc,
        beta: fluid_cfg.beta,
        a0: fluid_cfg.a0,
        eta,
    });
    let dt = fluid_cfg.dt;
    let mut tag = 0u32;
    let mut next_tag = move || {
        tag += 1;
        tag
    };

    for _ in 0..steps {
        // the fluid side consumed one tag for its halo; stay in lockstep
        let _halo_tag = next_tag();
        let stored = wall.a.clone();
        for _ in 1..=coupling.max_subiters {
            let t = next_tag();
            let p = comm.recv(fluid_partner, t);
            wall.a = stored.clone();
            wall.step(&p, dt);
            comm.send(fluid_partner, t, &wall.a);
            let global = comm.allreduce_max_scalar(0.0);
            if global < coupling.tol {
                break;
            }
        }
    }

    // participate in the final gather with the wall areas
    let _ = comm.gather(&wall.a);
    FsiDistResult {
        a: Vec::new(),
        q: Vec::new(),
        wall_a: Vec::new(),
        subiters: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsi::CoupledFsi;
    use crate::pulse1d::cardiac_inflow;

    fn rel_l2(a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len());
        let num: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        let den: f64 = a.iter().map(|x| x * x).sum::<f64>().max(1e-300);
        (num / den).sqrt()
    }

    #[test]
    fn distributed_fsi_matches_serial() {
        let cfg = PulseConfig::artery(96);
        let eta = 40.0;
        let coupling = FsiConfig::default();
        let steps = 40;
        let mut serial = CoupledFsi::new(cfg.clone(), eta, coupling.clone(), cardiac_inflow);
        serial.run(steps);
        for pairs in [1usize, 2, 3, 4] {
            let dist = run_coupled_distributed(&cfg, eta, &coupling, cardiac_inflow, pairs, steps);
            let da = rel_l2(&serial.fluid.a, &dist.a);
            let dq = rel_l2(&serial.fluid.q, &dist.q);
            let dw = rel_l2(&serial.solid.a, &dist.wall_a);
            assert!(da < 1e-10, "pairs={pairs}: fluid area diff {da}");
            assert!(dq < 1e-8, "pairs={pairs}: flow diff {dq}");
            assert!(dw < 1e-10, "pairs={pairs}: wall diff {dw}");
        }
    }

    #[test]
    fn subiteration_counts_match_serial() {
        let cfg = PulseConfig::artery(64);
        let coupling = FsiConfig::default();
        let steps = 20;
        let mut serial = CoupledFsi::new(cfg.clone(), 30.0, coupling.clone(), cardiac_inflow);
        serial.run(steps);
        let dist = run_coupled_distributed(&cfg, 30.0, &coupling, cardiac_inflow, 2, steps);
        assert_eq!(dist.subiters, serial.stats.subiters);
    }

    #[test]
    fn two_codes_still_converge_with_stiff_wall() {
        let cfg = PulseConfig::artery(64);
        let dist =
            run_coupled_distributed(&cfg, 1e-3, &FsiConfig::default(), cardiac_inflow, 4, 30);
        assert!(dist.a.iter().all(|x| x.is_finite() && *x > 0.0));
        assert_eq!(dist.a.len(), 64);
        assert_eq!(dist.wall_a.len(), 64);
    }
}
