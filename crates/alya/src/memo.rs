//! A process-wide memo cache for [`AlyaCase::job_profile`].
//!
//! Building a [`JobProfile`] is cheap for one scenario, but the sweep
//! layer compiles the same case at the same rank count once per execution
//! environment and once per seed batch — at Fig. 3 scale that repeats an
//! identical profile construction hundreds of times. Cases that implement
//! [`AlyaCase::memo_key`] get their profiles cached here, keyed by
//! `(case parameters, ranks)`.
//!
//! The cache is value-based and append-only: a key must encode *every*
//! parameter that influences the profile (the built-in cases serialize all
//! their fields, floats by bit pattern), so a hit is always semantically
//! identical to a rebuild. Lookups never hold the lock while a profile is
//! being built; a lost race costs one redundant build, not a deadlock.

use crate::workload::AlyaCase;
use harborsim_mpi::workload::JobProfile;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

type Cache = Mutex<HashMap<(String, u32), JobProfile>>;

static CACHE: OnceLock<Cache> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn cache() -> &'static Cache {
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The job profile of `case` at `ranks`, served from the process-wide
/// cache when the case opts in via [`AlyaCase::memo_key`].
pub fn job_profile_cached(case: &dyn AlyaCase, ranks: u32) -> JobProfile {
    let Some(key) = case.memo_key() else {
        return case.job_profile(ranks);
    };
    let key = (key, ranks);
    if let Some(hit) = cache().lock().unwrap().get(&key).cloned() {
        HITS.fetch_add(1, Ordering::Relaxed);
        return hit;
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let profile = case.job_profile(ranks);
    cache()
        .lock()
        .unwrap()
        .entry(key)
        .or_insert_with(|| profile.clone());
    profile
}

/// `(hits, misses)` counters of the profile cache, process-wide.
pub fn cache_stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{ArteryCfd, ArteryFsi};

    #[test]
    fn cached_profile_identical_to_direct() {
        let case = ArteryCfd::small();
        assert_eq!(job_profile_cached(&case, 12), case.job_profile(12));
        let fsi = ArteryFsi::small();
        assert_eq!(job_profile_cached(&fsi, 24), fsi.job_profile(24));
    }

    #[test]
    fn repeat_lookup_hits() {
        let case = ArteryCfd {
            label: "memo-probe".into(),
            active_cells: 7.5e5,
            timesteps: 11,
            cg_iters: 9,
        };
        let _ = job_profile_cached(&case, 96);
        let (h0, _) = cache_stats();
        let again = job_profile_cached(&case, 96);
        let (h1, _) = cache_stats();
        assert!(h1 > h0, "second lookup must hit the cache");
        assert_eq!(again, case.job_profile(96));
    }

    #[test]
    fn parameter_change_changes_key() {
        let a = ArteryCfd {
            label: "memo-collide".into(),
            active_cells: 1.0e5,
            timesteps: 4,
            cg_iters: 10,
        };
        let mut b = a.clone();
        b.cg_iters = 20;
        assert_ne!(a.memo_key(), b.memo_key());
        // same label, different params: cache must not cross-serve
        assert_ne!(job_profile_cached(&a, 8), job_profile_cached(&b, 8));
    }
}
