//! The FSI artery case: partitioned coupling of the fluid and solid codes.
//!
//! As in the paper, the case runs "two instances of different codes": the
//! 1D pulse-wave fluid solver ([`crate::pulse1d`]) and the wall-mechanics
//! solid solver ([`crate::wall`]). Each time step runs a fixed-point loop:
//!
//! 1. the fluid advances a trial step and sends its interface pressures;
//! 2. the solid advances under those pressures and sends back wall areas;
//! 3. the fluid's areas are relaxed toward the wall's
//!    (`A ← A + ω(A_wall − A)`), and the pair sub-iterates until the
//!    interface residual drops below tolerance.
//!
//! With a stiff wall the coupled solution collapses onto the standalone
//! fluid solution — the anchor test — while a compliant wall visibly
//! damps and delays the pulse.

use crate::pulse1d::{PulseConfig, PulseSolver};
use crate::wall::{WallConfig, WallSolver};

/// Coupling parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FsiConfig {
    /// Under-relaxation factor ω ∈ (0, 1].
    pub relaxation: f64,
    /// Interface residual tolerance (relative, on area).
    pub tol: f64,
    /// Sub-iteration cap per step.
    pub max_subiters: usize,
}

impl Default for FsiConfig {
    fn default() -> Self {
        FsiConfig {
            relaxation: 0.7,
            tol: 1e-8,
            max_subiters: 50,
        }
    }
}

/// Coupling statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FsiStats {
    /// Time steps taken.
    pub steps: u64,
    /// Total sub-iterations.
    pub subiters: u64,
    /// Steps that hit the sub-iteration cap.
    pub non_converged: u64,
}

/// The coupled solver: one fluid instance + one solid instance.
#[derive(Debug, Clone)]
pub struct CoupledFsi {
    /// The fluid code.
    pub fluid: PulseSolver,
    /// The solid code.
    pub solid: WallSolver,
    /// Coupling parameters.
    pub cfg: FsiConfig,
    /// Statistics.
    pub stats: FsiStats,
}

impl CoupledFsi {
    /// Build the pair with consistent grids and material parameters.
    pub fn new(
        fluid_cfg: PulseConfig,
        eta: f64,
        coupling: FsiConfig,
        inflow: fn(f64) -> f64,
    ) -> CoupledFsi {
        let wall_cfg = WallConfig {
            n: fluid_cfg.n,
            beta: fluid_cfg.beta,
            a0: fluid_cfg.a0,
            eta,
        };
        CoupledFsi {
            fluid: PulseSolver::new(fluid_cfg, inflow),
            solid: WallSolver::new(wall_cfg),
            cfg: coupling,
            stats: FsiStats::default(),
        }
    }

    /// One coupled time step; returns the sub-iterations used.
    ///
    /// The fluid advances one trial step; the interface area is then the
    /// fixed-point unknown: each sub-iteration sends the fluid's tube-law
    /// pressures to the solid, advances the solid from its converged state
    /// under them, and relaxes the fluid areas toward the wall's answer.
    /// The map contracts whenever the wall's pressure response over one
    /// `dt` is milder than the tube law itself, which holds for any
    /// physical viscosity.
    pub fn step(&mut self) -> usize {
        let dt = self.fluid.cfg.dt;
        let solid_prev = self.solid.a.clone();

        // fluid trial step from the current converged state
        self.fluid.step();

        let mut used = self.cfg.max_subiters;
        for it in 1..=self.cfg.max_subiters {
            // fluid -> solid: interface pressures of the current iterate
            let p_fluid = self.fluid.pressures();
            // solid advances from its converged state each sub-iteration
            self.solid.a = solid_prev.clone();
            self.solid.step(&p_fluid, dt);

            // solid -> fluid: wall areas; relax fluid areas toward them
            let mut residual: f64 = 0.0;
            for (af, &aw) in self.fluid.a.iter_mut().zip(&self.solid.a) {
                let r = aw - *af;
                residual = residual.max(r.abs() / aw.max(1e-12));
                *af += self.cfg.relaxation * r;
            }
            if residual < self.cfg.tol {
                used = it;
                break;
            }
        }
        if used == self.cfg.max_subiters {
            self.stats.non_converged += 1;
        }
        self.stats.steps += 1;
        self.stats.subiters += used as u64;
        used
    }

    /// Advance `steps` coupled steps.
    pub fn run(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// Mean sub-iterations per step so far.
    pub fn mean_subiters(&self) -> f64 {
        if self.stats.steps == 0 {
            0.0
        } else {
            self.stats.subiters as f64 / self.stats.steps as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pulse1d::cardiac_inflow;

    fn short_blip(t: f64) -> f64 {
        if t < 0.01 {
            (std::f64::consts::PI * t / 0.01).sin() * 200.0
        } else {
            0.0
        }
    }

    #[test]
    fn coupling_converges_every_step() {
        let cfg = PulseConfig::artery(100);
        let mut fsi = CoupledFsi::new(cfg, 30.0, FsiConfig::default(), cardiac_inflow);
        fsi.run(200);
        assert_eq!(fsi.stats.non_converged, 0, "no step may hit the cap");
        let mean = fsi.mean_subiters();
        assert!((1.0..25.0).contains(&mean), "mean subiters {mean}");
    }

    #[test]
    fn stiff_wall_matches_standalone_fluid() {
        let cfg = PulseConfig::artery(150);
        let steps = 120;
        let mut fluid_only = PulseSolver::new(cfg.clone(), short_blip);
        fluid_only.run(steps);
        // very stiff wall: eta tiny -> wall tracks the elastic law exactly
        let mut fsi = CoupledFsi::new(cfg, 1e-3, FsiConfig::default(), short_blip);
        fsi.run(steps);
        let num: f64 = fsi
            .fluid
            .a
            .iter()
            .zip(&fluid_only.a)
            .map(|(x, y)| (x - y) * (x - y))
            .sum();
        let den: f64 = fluid_only.a.iter().map(|x| x * x).sum();
        let rel = (num / den).sqrt();
        assert!(rel < 2e-2, "stiff-wall FSI must track the fluid: rel={rel}");
    }

    #[test]
    fn compliant_wall_damps_the_pulse() {
        let cfg = PulseConfig::artery(150);
        let steps = 100;
        let mut stiff = CoupledFsi::new(cfg.clone(), 1e-3, FsiConfig::default(), short_blip);
        let mut soft = CoupledFsi::new(cfg.clone(), 200.0, FsiConfig::default(), short_blip);
        stiff.run(steps);
        soft.run(steps);
        let peak = |s: &CoupledFsi| s.fluid.a.iter().cloned().fold(f64::MIN, f64::max);
        let (ps, pf) = (peak(&stiff), peak(&soft));
        assert!(
            pf - cfg.a0 < ps - cfg.a0,
            "viscous wall must damp the distension: stiff {ps} soft {pf}"
        );
    }

    #[test]
    fn areas_remain_physical() {
        let cfg = PulseConfig::artery(100);
        let mut fsi = CoupledFsi::new(cfg.clone(), 50.0, FsiConfig::default(), cardiac_inflow);
        fsi.run(300);
        for (&af, &aw) in fsi.fluid.a.iter().zip(&fsi.solid.a) {
            assert!(af.is_finite() && af > 0.0, "fluid A={af}");
            assert!(aw.is_finite() && aw > 0.0, "wall A={aw}");
        }
        assert_eq!(fsi.stats.steps, 300);
    }

    #[test]
    fn tighter_tolerance_costs_more_subiters() {
        let cfg = PulseConfig::artery(80);
        let loose = FsiConfig {
            tol: 1e-4,
            ..FsiConfig::default()
        };
        let tight = FsiConfig {
            tol: 1e-10,
            ..FsiConfig::default()
        };
        let mut a = CoupledFsi::new(cfg.clone(), 40.0, loose, cardiac_inflow);
        let mut b = CoupledFsi::new(cfg, 40.0, tight, cardiac_inflow);
        a.run(50);
        b.run(50);
        assert!(b.stats.subiters >= a.stats.subiters);
    }
}
