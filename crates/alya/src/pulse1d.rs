//! The 1D arterial pulse-wave fluid code.
//!
//! The classical one-dimensional blood-flow model in area/flow form:
//!
//! ```text
//! A_t + Q_x = 0
//! Q_t + (Q²/A + β/(3ρ)·A^{3/2})_x = −K_r·Q/A
//! ```
//!
//! with the elastic tube law `p = β(√A − √A₀)` folded into the flux (valid
//! for constant `β`), solved by the two-step Richtmyer Lax–Wendroff scheme.
//! Small pressure perturbations travel at the Moens–Korteweg speed
//! `c = √(β/(2ρ))·A^{1/4}`, which the tests verify.
//!
//! This is the "fluid sub-domain" code of the FSI pair; the wall-mechanics
//! code lives in [`crate::wall`].

/// Model parameters (CGS-ish units; defaults approximate a large artery).
#[derive(Debug, Clone, PartialEq)]
pub struct PulseConfig {
    /// Stations along the vessel.
    pub n: usize,
    /// Station spacing, cm.
    pub dx: f64,
    /// Time step, s.
    pub dt: f64,
    /// Blood density, g/cm³.
    pub rho: f64,
    /// Wall stiffness β, dyn/cm³ per √cm².
    pub beta: f64,
    /// Reference (unloaded) cross-section area, cm².
    pub a0: f64,
    /// Friction coefficient `K_r`, cm²/s.
    pub kr: f64,
}

impl PulseConfig {
    /// A 20 cm artery with physiological-ish parameters and a CFL-safe dt.
    pub fn artery(n: usize) -> PulseConfig {
        let a0: f64 = 3.0;
        let beta: f64 = 4.0e4;
        let rho: f64 = 1.06;
        let dx = 20.0 / n as f64;
        // wave speed at rest
        let c0 = (beta / (2.0 * rho)).sqrt() * a0.powf(0.25);
        PulseConfig {
            n,
            dx,
            dt: 0.4 * dx / c0,
            rho,
            beta,
            a0,
            kr: 8.0,
        }
    }

    /// Moens–Korteweg wave speed at area `a`.
    pub fn wave_speed(&self, a: f64) -> f64 {
        (self.beta / (2.0 * self.rho)).sqrt() * a.powf(0.25)
    }

    /// Tube-law pressure at area `a` (relative to external pressure).
    pub fn pressure(&self, a: f64) -> f64 {
        self.beta * (a.sqrt() - self.a0.sqrt())
    }
}

/// Distal (outlet) boundary condition.
#[derive(Debug, Clone, PartialEq)]
pub enum OutletBc {
    /// Zero-order extrapolation (quasi-non-reflective).
    Extrapolate,
    /// Three-element Windkessel: characteristic resistance `r1` in series
    /// with a parallel `r2 ∥ c` — the standard lumped model of the distal
    /// vascular bed. Units: dyn·s/cm⁵ and cm⁵/dyn.
    Windkessel {
        /// Characteristic (proximal) resistance.
        r1: f64,
        /// Peripheral resistance.
        r2: f64,
        /// Compliance.
        c: f64,
        /// Stored pressure across the compliance (state variable).
        p_stored: f64,
    },
}

/// The fluid state and solver.
#[derive(Debug, Clone)]
pub struct PulseSolver {
    /// Parameters.
    pub cfg: PulseConfig,
    /// Cross-section area per station, cm².
    pub a: Vec<f64>,
    /// Volumetric flow per station, cm³/s.
    pub q: Vec<f64>,
    /// Simulated time, s.
    pub time: f64,
    /// Outlet boundary condition.
    pub outlet: OutletBc,
    /// Inflow waveform `Q(t)` at the proximal end.
    inflow: fn(f64) -> f64,
}

/// A half-sine systolic ejection: 70 ml over 0.3 s, repeating at 1 Hz.
pub fn cardiac_inflow(t: f64) -> f64 {
    let phase = t % 1.0;
    if phase < 0.3 {
        (std::f64::consts::PI * phase / 0.3).sin() * 350.0
    } else {
        0.0
    }
}

/// Flux of the conservative system.
#[inline]
fn flux(cfg: &PulseConfig, a: f64, q: f64) -> (f64, f64) {
    (q, q * q / a + cfg.beta / (3.0 * cfg.rho) * a.powf(1.5))
}

impl PulseSolver {
    /// A vessel at rest with the given inflow waveform.
    pub fn new(cfg: PulseConfig, inflow: fn(f64) -> f64) -> PulseSolver {
        let n = cfg.n;
        let a0 = cfg.a0;
        PulseSolver {
            cfg,
            a: vec![a0; n],
            q: vec![0.0; n],
            time: 0.0,
            outlet: OutletBc::Extrapolate,
            inflow,
        }
    }

    /// Attach a physiological Windkessel outlet (replaces extrapolation).
    pub fn with_windkessel(mut self, r1: f64, r2: f64, c: f64) -> PulseSolver {
        self.outlet = OutletBc::Windkessel {
            r1,
            r2,
            c,
            p_stored: 0.0,
        };
        self
    }

    /// One Richtmyer Lax–Wendroff step with friction source.
    pub fn step(&mut self) {
        let cfg = &self.cfg;
        let n = cfg.n;
        let (dt, dx) = (cfg.dt, cfg.dx);
        let lam = dt / dx;

        // half-step interface states (n-1 interfaces)
        let mut ah = vec![0.0; n - 1];
        let mut qh = vec![0.0; n - 1];
        for i in 0..n - 1 {
            let (fa_l, fq_l) = flux(cfg, self.a[i], self.q[i]);
            let (fa_r, fq_r) = flux(cfg, self.a[i + 1], self.q[i + 1]);
            ah[i] = 0.5 * (self.a[i] + self.a[i + 1]) - 0.5 * lam * (fa_r - fa_l);
            qh[i] = 0.5 * (self.q[i] + self.q[i + 1]) - 0.5 * lam * (fq_r - fq_l);
        }
        // full step on interior stations
        let mut a_new = self.a.clone();
        let mut q_new = self.q.clone();
        for i in 1..n - 1 {
            let (fa_l, fq_l) = flux(cfg, ah[i - 1], qh[i - 1]);
            let (fa_r, fq_r) = flux(cfg, ah[i], qh[i]);
            a_new[i] = self.a[i] - lam * (fa_r - fa_l);
            q_new[i] = self.q[i] - lam * (fq_r - fq_l) - dt * cfg.kr * self.q[i] / self.a[i];
        }
        // proximal BC: prescribed inflow, area extrapolated
        q_new[0] = (self.inflow)(self.time + dt);
        a_new[0] = a_new[1];
        // distal BC
        match &mut self.outlet {
            OutletBc::Extrapolate => {
                a_new[n - 1] = a_new[n - 2];
                q_new[n - 1] = q_new[n - 2];
            }
            OutletBc::Windkessel {
                r1,
                r2,
                c,
                p_stored,
            } => {
                let q_out = q_new[n - 2];
                // compliance charges from the inflow, drains through r2
                // (semi-implicit update keeps the stiff RC stable)
                let denom = 1.0 + dt / (*r2 * *c);
                *p_stored = (*p_stored + dt * q_out / *c) / denom;
                let p_terminal = *p_stored + q_out * *r1;
                // set the outlet area consistent with the tube law
                let root = p_terminal / cfg.beta + cfg.a0.sqrt();
                a_new[n - 1] = root.max(1e-6).powi(2);
                q_new[n - 1] = q_out;
            }
        }

        self.a = a_new;
        self.q = q_new;
        self.time += dt;
    }

    /// Advance `steps` steps.
    pub fn run(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// Pressure per station from the tube law.
    pub fn pressures(&self) -> Vec<f64> {
        self.a.iter().map(|&a| self.cfg.pressure(a)).collect()
    }

    /// Station index of the pressure peak.
    pub fn peak_station(&self) -> usize {
        self.a
            .iter()
            .enumerate()
            .max_by(|(_, x), (_, y)| x.partial_cmp(y).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Total vessel volume (∫A dx).
    pub fn volume(&self) -> f64 {
        self.a.iter().sum::<f64>() * self.cfg.dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rest_state_is_steady_without_inflow() {
        let cfg = PulseConfig::artery(200);
        let mut s = PulseSolver::new(cfg.clone(), |_| 0.0);
        s.run(500);
        for (i, &a) in s.a.iter().enumerate() {
            assert!((a - cfg.a0).abs() < 1e-9, "station {i}: A={a}");
        }
        assert!(s.q.iter().all(|&q| q.abs() < 1e-9));
    }

    #[test]
    fn pulse_propagates_at_moens_korteweg_speed() {
        let cfg = PulseConfig::artery(400);
        let c0 = cfg.wave_speed(cfg.a0);
        // short pulse then silence
        fn blip(t: f64) -> f64 {
            if t < 0.004 {
                (std::f64::consts::PI * t / 0.004).sin() * 150.0
            } else {
                0.0
            }
        }
        let mut s = PulseSolver::new(cfg.clone(), blip);
        // let the pulse form, record peak, advance, record again
        let t_form = (0.006 / cfg.dt) as usize;
        s.run(t_form);
        let x1 = s.peak_station() as f64 * cfg.dx;
        let t1 = s.time;
        let travel_steps = (0.015 / cfg.dt) as usize;
        s.run(travel_steps);
        let x2 = s.peak_station() as f64 * cfg.dx;
        let t2 = s.time;
        let measured = (x2 - x1) / (t2 - t1);
        let rel = (measured - c0).abs() / c0;
        assert!(
            rel < 0.25,
            "wave speed {measured:.1} cm/s vs Moens-Korteweg {c0:.1} cm/s (rel {rel:.2})"
        );
    }

    #[test]
    fn volume_grows_with_net_inflow() {
        let cfg = PulseConfig::artery(200);
        let mut s = PulseSolver::new(cfg.clone(), |_| 50.0);
        let v0 = s.volume();
        // a few steps: inflow has entered, pulse not yet at the outlet
        s.run(20);
        let v1 = s.volume();
        assert!(v1 > v0, "v0={v0} v1={v1}");
    }

    #[test]
    fn cardiac_cycle_stays_bounded_and_positive() {
        let cfg = PulseConfig::artery(200);
        let mut s = PulseSolver::new(cfg.clone(), cardiac_inflow);
        let steps = (2.0 / cfg.dt) as usize; // two cardiac cycles
        s.run(steps);
        for &a in &s.a {
            assert!(
                a.is_finite() && a > 0.5 * cfg.a0 && a < 3.0 * cfg.a0,
                "A={a}"
            );
        }
        // distension happened at some point
        let p = s.pressures();
        assert!(p.iter().cloned().fold(f64::MIN, f64::max) > -1e4);
    }

    #[test]
    fn windkessel_builds_pressure_and_decays() {
        let cfg = PulseConfig::artery(150);
        // physiological-ish terminal bed: Rc ~ 100, Rp ~ 1200, C ~ 1e-4
        let mut s =
            PulseSolver::new(cfg.clone(), cardiac_inflow).with_windkessel(100.0, 1200.0, 1e-4);
        // run one systole: compliance charges
        let steps_per_100ms = (0.1 / cfg.dt) as usize;
        s.run(3 * steps_per_100ms);
        let p_sys = match &s.outlet {
            OutletBc::Windkessel { p_stored, .. } => *p_stored,
            _ => unreachable!(),
        };
        assert!(
            p_sys > 1_000.0,
            "systole must charge the windkessel: {p_sys}"
        );
        // diastole (no inflow): stored pressure decays with tau = R2*C
        s.run(5 * steps_per_100ms);
        let p_dia = match &s.outlet {
            OutletBc::Windkessel { p_stored, .. } => *p_stored,
            _ => unreachable!(),
        };
        assert!(p_dia < p_sys, "diastolic decay: {p_dia} vs {p_sys}");
        assert!(p_dia > 0.0, "but not to zero within ~4 tau");
        // outlet area stays physical
        assert!(s.a.iter().all(|&a| a > 0.5 * cfg.a0 && a < 3.0 * cfg.a0));
    }

    #[test]
    fn windkessel_reflects_where_extrapolation_does_not() {
        // a terminal resistance traps wave energy in the vessel; with the
        // open (extrapolating) outlet the pulse leaves. Compare the total
        // excess pressure after the pulse has had time to exit/reflect:
        // vessel 20 cm, c0 ~ 180 cm/s -> transit ~0.11 s; run 0.2 s.
        let cfg = PulseConfig::artery(200);
        fn blip(t: f64) -> f64 {
            if t < 0.01 {
                (std::f64::consts::PI * t / 0.01).sin() * 200.0
            } else {
                0.0
            }
        }
        let steps = (0.2 / cfg.dt) as usize;
        let mut open = PulseSolver::new(cfg.clone(), blip);
        // R1 a few x the characteristic impedance (~64 dyn·s/cm^5 here),
        // compliance with tau = R2·C ~ 0.4 s so the bed stays charged
        let mut terminated =
            PulseSolver::new(cfg.clone(), blip).with_windkessel(200.0, 2_000.0, 2e-4);
        open.run(steps);
        terminated.run(steps);
        let stored = |s: &PulseSolver| s.pressures().iter().map(|p| p.abs()).sum::<f64>();
        assert!(stored(&terminated).is_finite() && stored(&open).is_finite());
        assert!(
            stored(&terminated) > 2.0 * stored(&open),
            "termination must retain wave energy: {} vs {}",
            stored(&terminated),
            stored(&open)
        );
    }

    #[test]
    fn pressure_law_monotone() {
        let cfg = PulseConfig::artery(10);
        assert!(cfg.pressure(cfg.a0) == 0.0);
        assert!(cfg.pressure(1.2 * cfg.a0) > 0.0);
        assert!(cfg.pressure(0.8 * cfg.a0) < 0.0);
        assert!(cfg.wave_speed(1.2 * cfg.a0) > cfg.wave_speed(cfg.a0));
    }
}
