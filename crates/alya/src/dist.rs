//! Slab-decomposed CFD over the functional thread MPI.
//!
//! The same fractional-step scheme as [`crate::cfd`], with the tube cut
//! into contiguous z-slabs, one MPI rank per slab. Each rank stores its
//! planes plus two ghost planes; every stencil sweep is preceded by a halo
//! exchange, and the CG dot products become allreduces. This *is* the
//! communication pattern the [`crate::workload`] models hand to the
//! performance engines — validated here against the sequential solver.
//!
//! Boundary planes (`k = 0` inflow, `k = nz-1` outflow) are recomputed
//! locally by every rank that holds them (as owned or ghost planes): both
//! are deterministic functions of data the holder has after the exchange,
//! which avoids a second round of messages.

use crate::cfd::CfdConfig;
use crate::mesh::TubeMesh;
use harborsim_mpi::thread_mpi::ThreadComm;

/// Result of a distributed run: the gathered fields (root's reassembly).
#[derive(Debug, Clone)]
pub struct DistResult {
    /// Axial velocity, full mesh, rank-0 reassembly.
    pub w: Vec<f64>,
    /// Pressure, full mesh.
    pub p: Vec<f64>,
    /// Total CG iterations (identical on every rank).
    pub cg_iters: u64,
    /// Halo exchanges performed per rank.
    pub halo_exchanges: u64,
}

struct Slab<'a> {
    mesh: &'a TubeMesh,
    cfg: &'a CfdConfig,
    k0: usize,
    nloc: usize,
    plane: usize,
}

impl<'a> Slab<'a> {
    /// Local plane index of global plane `k` (1-based owned planes; 0 and
    /// `nloc+1` are ghosts).
    fn local(&self, k: usize) -> usize {
        k + 1 - self.k0
    }

    /// Whether this rank holds global plane `k` (owned or ghost).
    fn holds(&self, k: isize) -> bool {
        k >= self.k0 as isize - 1 && k <= (self.k0 + self.nloc) as isize
    }

    fn idx(&self, i: usize, j: usize, lk: usize) -> usize {
        i + self.mesh.nx * j + self.plane * lk
    }
}

/// Exchange ghost planes of `field` with chain neighbours.
fn halo(comm: &mut ThreadComm, slab: &Slab, field: &mut [f64], tag: u32) {
    let (rank, size) = (comm.rank(), comm.size());
    let plane = slab.plane;
    let nloc = slab.nloc;
    // post both sends first (buffered), then receive
    if rank > 0 {
        comm.send(rank - 1, tag, &field[plane..2 * plane]);
    }
    if rank + 1 < size {
        comm.send(rank + 1, tag, &field[nloc * plane..(nloc + 1) * plane]);
    }
    if rank > 0 {
        let got = comm.recv(rank - 1, tag);
        field[..plane].copy_from_slice(&got);
    }
    if rank + 1 < size {
        let got = comm.recv(rank + 1, tag);
        field[(nloc + 1) * plane..(nloc + 2) * plane].copy_from_slice(&got);
    }
}

/// Recompute the inflow plane (global 0) and the outflow plane (global
/// `nz-1 :=` copy of `nz-2`) on every held copy.
fn fix_boundary_planes(slab: &Slab, u: &mut [f64], v: &mut [f64], w: &mut [f64], inflow_peak: f64) {
    let mesh = slab.mesh;
    let (nx, ny, nz) = (mesh.nx, mesh.ny, mesh.nz);
    if slab.holds(0) {
        let lk = slab.local(0);
        for j in 0..ny {
            for i in 0..nx {
                let idx = slab.idx(i, j, lk);
                if mesh.active_flat(mesh.idx(i, j, 0)) {
                    u[idx] = 0.0;
                    v[idx] = 0.0;
                    w[idx] = inflow_peak * mesh.inflow_profile(i, j);
                }
            }
        }
    }
    if slab.holds(nz as isize - 1) && slab.holds(nz as isize - 2) {
        let (dst, src) = (slab.local(nz - 1), slab.local(nz - 2));
        let plane = slab.plane;
        for o in 0..plane {
            u[dst * plane + o] = u[src * plane + o];
            v[dst * plane + o] = v[src * plane + o];
            w[dst * plane + o] = w[src * plane + o];
        }
    }
}

/// Run the distributed solver on `ranks` threads for `steps` steps.
pub fn run_distributed(mesh: &TubeMesh, cfg: &CfdConfig, ranks: usize, steps: usize) -> DistResult {
    assert!(
        ranks >= 1 && ranks <= mesh.nz / 2,
        "need >= 2 planes per rank"
    );
    assert!(
        cfg.pulsatile.is_none(),
        "the distributed solver supports steady inflow only"
    );
    let slabs = mesh.slab_ranges(ranks);
    let results = ThreadComm::run(ranks, |comm| run_rank(comm, mesh, cfg, &slabs, steps));
    // root (index 0) carries the gathered fields
    results.into_iter().next().expect("rank 0 result")
}

#[allow(clippy::too_many_lines)]
fn run_rank(
    comm: &mut ThreadComm,
    mesh: &TubeMesh,
    cfg: &CfdConfig,
    slabs: &[(usize, usize)],
    steps: usize,
) -> DistResult {
    let rank = comm.rank();
    let (k0, k1) = slabs[rank];
    let plane = mesh.nx * mesh.ny;
    let nloc = k1 - k0;
    let slab = Slab {
        mesh,
        cfg,
        k0,
        nloc,
        plane,
    };
    let nz = mesh.nz;
    let n = plane * (nloc + 2);
    let mut u = vec![0.0; n];
    let mut v = vec![0.0; n];
    let mut w = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut us = vec![0.0; n];
    let mut vs = vec![0.0; n];
    let mut ws = vec![0.0; n];
    let mut rhs = vec![0.0; n];
    let mut cg_r = vec![0.0; n];
    let mut cg_d = vec![0.0; n];
    let mut cg_ap = vec![0.0; n];
    let mut tag: u32 = 100;
    let mut cg_iters: u64 = 0;
    let mut halo_count: u64 = 0;

    let next_tag = |t: &mut u32| {
        *t += 1;
        *t
    };

    for _ in 0..steps {
        // 1. velocity halo + boundary planes
        for f in [&mut u, &mut v, &mut w] {
            halo(comm, &slab, f, next_tag(&mut tag));
            halo_count += 1;
        }
        fix_boundary_planes(&slab, &mut u, &mut v, &mut w, cfg.inflow_peak);

        // 2. momentum on owned interior planes (global 1..nz-1)
        momentum_local(&slab, &u, &v, &w, &mut us, &mut vs, &mut ws);
        // tentative-field halo + boundary planes (us mirrors u at inlet,
        // copies nz-2 at outlet — same recomputation trick)
        for f in [&mut us, &mut vs, &mut ws] {
            halo(comm, &slab, f, next_tag(&mut tag));
            halo_count += 1;
        }
        if slab.holds(0) {
            let lk = slab.local(0);
            us[lk * plane..(lk + 1) * plane].copy_from_slice(&u[lk * plane..(lk + 1) * plane]);
            vs[lk * plane..(lk + 1) * plane].copy_from_slice(&v[lk * plane..(lk + 1) * plane]);
            ws[lk * plane..(lk + 1) * plane].copy_from_slice(&w[lk * plane..(lk + 1) * plane]);
        }
        if slab.holds(nz as isize - 1) && slab.holds(nz as isize - 2) {
            let (dst, src) = (slab.local(nz - 1), slab.local(nz - 2));
            for f in [&mut us, &mut vs, &mut ws] {
                let (lo, hi) = f.split_at_mut(dst * plane);
                hi[..plane].copy_from_slice(&lo[src * plane..(src + 1) * plane]);
            }
        }

        // 3. divergence RHS on owned planes with k < nz-1
        divergence_local(&slab, &us, &vs, &ws, &mut rhs);

        // 4. CG on A p = -rhs with distributed dots
        cg_iters += cg_local(
            comm,
            &slab,
            &rhs,
            &mut p,
            &mut cg_r,
            &mut cg_d,
            &mut cg_ap,
            &mut tag,
            &mut halo_count,
        ) as u64;

        // 5. pressure halo + correction
        halo(comm, &slab, &mut p, next_tag(&mut tag));
        halo_count += 1;
        correct_local(&slab, &p, &us, &vs, &ws, &mut u, &mut v, &mut w);
    }

    // final halo + boundary fix so gathered fields match the serial BCs
    for f in [&mut u, &mut v, &mut w] {
        halo(comm, &slab, f, next_tag(&mut tag));
        halo_count += 1;
    }
    fix_boundary_planes(&slab, &mut u, &mut v, &mut w, cfg.inflow_peak);

    // gather owned planes at root
    let own_w = w[plane..(nloc + 1) * plane].to_vec();
    let own_p = p[plane..(nloc + 1) * plane].to_vec();
    let gw = comm.gather(&own_w);
    let gp = comm.gather(&own_p);
    let (mut full_w, mut full_p) = (Vec::new(), Vec::new());
    if let (Some(ws_all), Some(ps_all)) = (gw, gp) {
        for part in ws_all {
            full_w.extend(part);
        }
        for part in ps_all {
            full_p.extend(part);
        }
    }
    DistResult {
        w: full_w,
        p: full_p,
        cg_iters,
        halo_exchanges: halo_count,
    }
}

fn momentum_local(
    slab: &Slab,
    u: &[f64],
    v: &[f64],
    w: &[f64],
    us: &mut [f64],
    vs: &mut [f64],
    ws: &mut [f64],
) {
    let mesh = slab.mesh;
    let (nx, ny, nz) = (mesh.nx, mesh.ny, mesh.nz);
    let (nu, dt) = (slab.cfg.nu, slab.cfg.dt);
    for gk in slab.k0.max(1)..(slab.k0 + slab.nloc).min(nz - 1) {
        let lk = slab.local(gk);
        for j in 0..ny {
            for i in 0..nx {
                let lidx = slab.idx(i, j, lk);
                if !mesh.active_flat(mesh.idx(i, j, gk)) {
                    us[lidx] = 0.0;
                    vs[lidx] = 0.0;
                    ws[lidx] = 0.0;
                    continue;
                }
                let get = |f: &[f64], di: isize, dj: isize, dk: isize| -> f64 {
                    let (ii, jj, kk) = (i as isize + di, j as isize + dj, gk as isize + dk);
                    if mesh.is_active(ii, jj, kk) {
                        f[slab.idx(ii as usize, jj as usize, slab.local(kk as usize))]
                    } else {
                        0.0
                    }
                };
                let (uc, vc, wc) = (u[lidx], v[lidx], w[lidx]);
                let upd = |f: &[f64]| -> f64 {
                    let c = f[lidx];
                    let (xm, xp) = (get(f, -1, 0, 0), get(f, 1, 0, 0));
                    let (ym, yp) = (get(f, 0, -1, 0), get(f, 0, 1, 0));
                    let (zm, zp) = (get(f, 0, 0, -1), get(f, 0, 0, 1));
                    let dfdx = if uc > 0.0 { c - xm } else { xp - c };
                    let dfdy = if vc > 0.0 { c - ym } else { yp - c };
                    let dfdz = if wc > 0.0 { c - zm } else { zp - c };
                    let adv = uc * dfdx + vc * dfdy + wc * dfdz;
                    let lap = xm + xp + ym + yp + zm + zp - 6.0 * c;
                    c + dt * (nu * lap - adv)
                };
                us[lidx] = upd(u);
                vs[lidx] = upd(v);
                ws[lidx] = upd(w);
            }
        }
    }
}

fn divergence_local(slab: &Slab, us: &[f64], vs: &[f64], ws: &[f64], rhs: &mut [f64]) {
    let mesh = slab.mesh;
    let (nx, ny, nz) = (mesh.nx, mesh.ny, mesh.nz);
    let dt = slab.cfg.dt;
    for x in rhs.iter_mut() {
        *x = 0.0;
    }
    for gk in slab.k0..(slab.k0 + slab.nloc).min(nz - 1) {
        let lk = slab.local(gk);
        for j in 0..ny {
            for i in 0..nx {
                let lidx = slab.idx(i, j, lk);
                if !mesh.active_flat(mesh.idx(i, j, gk)) {
                    continue;
                }
                let get = |f: &[f64], di: isize, dj: isize, dk: isize| -> f64 {
                    let (ii, jj, kk) = (i as isize + di, j as isize + dj, gk as isize + dk);
                    if mesh.is_active(ii, jj, kk) {
                        f[slab.idx(ii as usize, jj as usize, slab.local(kk as usize))]
                    } else {
                        0.0
                    }
                };
                let dudx = (get(us, 1, 0, 0) - get(us, -1, 0, 0)) / 2.0;
                let dvdy = (get(vs, 0, 1, 0) - get(vs, 0, -1, 0)) / 2.0;
                let wzm = if gk == 0 { ws[lidx] } else { get(ws, 0, 0, -1) };
                let dwdz = (get(ws, 0, 0, 1) - wzm) / 2.0;
                rhs[lidx] = (dudx + dvdy + dwdz) / dt;
            }
        }
    }
}

/// `y = A x` on owned planes (ghosts of `x` must be current).
fn laplacian_local(slab: &Slab, x: &[f64], y: &mut [f64]) {
    let mesh = slab.mesh;
    let (nx, ny, nz) = (mesh.nx, mesh.ny, mesh.nz);
    for gk in slab.k0..slab.k0 + slab.nloc {
        let lk = slab.local(gk);
        for j in 0..ny {
            for i in 0..nx {
                let lidx = slab.idx(i, j, lk);
                if !mesh.active_flat(mesh.idx(i, j, gk)) || gk == nz - 1 {
                    y[lidx] = 0.0;
                    continue;
                }
                let xc = x[lidx];
                let mut acc = 0.0;
                let mut visit = |di: isize, dj: isize, dk: isize| {
                    let (ii, jj, kk) = (i as isize + di, j as isize + dj, gk as isize + dk);
                    if mesh.is_active(ii, jj, kk) {
                        let kk = kk as usize;
                        if kk == nz - 1 {
                            acc += xc;
                        } else {
                            acc += xc - x[slab.idx(ii as usize, jj as usize, slab.local(kk))];
                        }
                    }
                };
                visit(-1, 0, 0);
                visit(1, 0, 0);
                visit(0, -1, 0);
                visit(0, 1, 0);
                visit(0, 0, -1);
                visit(0, 0, 1);
                y[lidx] = acc;
            }
        }
    }
}

/// Dot product over owned planes only.
fn dot_local(slab: &Slab, a: &[f64], b: &[f64]) -> f64 {
    let lo = slab.plane;
    let hi = (slab.nloc + 1) * slab.plane;
    a[lo..hi].iter().zip(&b[lo..hi]).map(|(x, y)| x * y).sum()
}

#[allow(clippy::too_many_arguments)]
fn cg_local(
    comm: &mut ThreadComm,
    slab: &Slab,
    rhs: &[f64],
    p: &mut [f64],
    cg_r: &mut [f64],
    cg_d: &mut [f64],
    cg_ap: &mut [f64],
    tag: &mut u32,
    halo_count: &mut u64,
) -> usize {
    let cfg = slab.cfg;
    // b = -rhs; r = b - A p  (p ghosts must be current for the matvec)
    *tag += 1;
    halo(comm, slab, p, *tag);
    *halo_count += 1;
    laplacian_local(slab, p, cg_ap);
    for i in 0..p.len() {
        cg_r[i] = -rhs[i] - cg_ap[i];
    }
    // mask to unknowns on owned planes; zero ghosts
    mask_unknowns(slab, cg_r);
    cg_d.copy_from_slice(cg_r);
    let local_bb: f64 = {
        let lo = slab.plane;
        let hi = (slab.nloc + 1) * slab.plane;
        rhs[lo..hi].iter().map(|x| x * x).sum()
    };
    let bnorm = comm.allreduce_sum_scalar(local_bb).sqrt().max(1e-300);
    let mut rs = comm.allreduce_sum_scalar(dot_local(slab, cg_r, cg_r));
    if rs.sqrt() <= cfg.cg_tol * bnorm {
        return 0;
    }
    for it in 1..=cfg.cg_max_iters {
        *tag += 1;
        halo(comm, slab, cg_d, *tag);
        *halo_count += 1;
        laplacian_local(slab, cg_d, cg_ap);
        let dad = comm.allreduce_sum_scalar(dot_local(slab, cg_d, cg_ap));
        if dad <= 0.0 {
            return it;
        }
        let alpha = rs / dad;
        for i in 0..p.len() {
            p[i] += alpha * cg_d[i];
            cg_r[i] -= alpha * cg_ap[i];
        }
        let rs_new = comm.allreduce_sum_scalar(dot_local(slab, cg_r, cg_r));
        if rs_new.sqrt() <= cfg.cg_tol * bnorm {
            return it;
        }
        let beta = rs_new / rs;
        rs = rs_new;
        for i in 0..p.len() {
            cg_d[i] = cg_r[i] + beta * cg_d[i];
        }
    }
    cfg.cg_max_iters
}

/// Zero entries that are not pressure unknowns (masked cells, the outlet
/// plane, and both ghost planes).
fn mask_unknowns(slab: &Slab, x: &mut [f64]) {
    let mesh = slab.mesh;
    let (nx, ny, nz) = (mesh.nx, mesh.ny, mesh.nz);
    let plane = slab.plane;
    // ghosts
    for o in 0..plane {
        x[o] = 0.0;
        x[(slab.nloc + 1) * plane + o] = 0.0;
    }
    for gk in slab.k0..slab.k0 + slab.nloc {
        let lk = slab.local(gk);
        for j in 0..ny {
            for i in 0..nx {
                if gk == nz - 1 || !mesh.active_flat(mesh.idx(i, j, gk)) {
                    x[slab.idx(i, j, lk)] = 0.0;
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn correct_local(
    slab: &Slab,
    p: &[f64],
    us: &[f64],
    vs: &[f64],
    ws: &[f64],
    u: &mut [f64],
    v: &mut [f64],
    w: &mut [f64],
) {
    let mesh = slab.mesh;
    let (nx, ny, nz) = (mesh.nx, mesh.ny, mesh.nz);
    let dt = slab.cfg.dt;
    for gk in slab.k0.max(1)..(slab.k0 + slab.nloc).min(nz - 1) {
        let lk = slab.local(gk);
        for j in 0..ny {
            for i in 0..nx {
                let lidx = slab.idx(i, j, lk);
                if !mesh.active_flat(mesh.idx(i, j, gk)) {
                    continue;
                }
                let pc = p[lidx];
                let get = |di: isize, dj: isize, dk: isize| -> f64 {
                    let (ii, jj, kk) = (i as isize + di, j as isize + dj, gk as isize + dk);
                    if mesh.is_active(ii, jj, kk) {
                        let kk = kk as usize;
                        if kk == nz - 1 {
                            0.0
                        } else {
                            p[slab.idx(ii as usize, jj as usize, slab.local(kk))]
                        }
                    } else {
                        pc
                    }
                };
                u[lidx] = us[lidx] - dt * (get(1, 0, 0) - get(-1, 0, 0)) / 2.0;
                v[lidx] = vs[lidx] - dt * (get(0, 1, 0) - get(0, -1, 0)) / 2.0;
                w[lidx] = ws[lidx] - dt * (get(0, 0, 1) - get(0, 0, -1)) / 2.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfd::CfdSolver;

    fn case() -> (TubeMesh, CfdConfig) {
        let mesh = TubeMesh::cylinder(11, 11, 24, 4.0);
        let mut cfg = CfdConfig::stable(&mesh, 30.0, 0.1);
        cfg.cg_tol = 1e-10;
        (mesh, cfg)
    }

    fn rel_l2(a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len());
        let num: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        let den: f64 = a.iter().map(|x| x * x).sum::<f64>().max(1e-300);
        (num / den).sqrt()
    }

    #[test]
    fn one_rank_matches_serial() {
        let (mesh, cfg) = case();
        let mut serial = CfdSolver::new(mesh.clone(), cfg.clone());
        serial.run(8);
        let dist = run_distributed(&mesh, &cfg, 1, 8);
        assert!(
            rel_l2(&serial.w, &dist.w) < 1e-12,
            "w diff {}",
            rel_l2(&serial.w, &dist.w)
        );
        assert!(rel_l2(&serial.p, &dist.p) < 1e-10);
    }

    #[test]
    fn many_ranks_match_serial() {
        let (mesh, cfg) = case();
        let mut serial = CfdSolver::new(mesh.clone(), cfg.clone());
        serial.run(6);
        for ranks in [2usize, 3, 4, 6] {
            let dist = run_distributed(&mesh, &cfg, ranks, 6);
            let dw = rel_l2(&serial.w, &dist.w);
            let dp = rel_l2(&serial.p, &dist.p);
            assert!(dw < 1e-8, "ranks={ranks}: w diff {dw}");
            assert!(dp < 1e-6, "ranks={ranks}: p diff {dp}");
        }
    }

    #[test]
    fn halo_exchange_count_matches_model() {
        // per step: 3 velocity + 3 tentative + 1 pressure-warm-start +
        // cg_iters + 1 pressure = 8 + cg_iters; plus 3 final
        let (mesh, cfg) = case();
        let steps = 4;
        let dist = run_distributed(&mesh, &cfg, 2, steps);
        let expected = steps as u64 * 8 + dist.cg_iters + 3;
        assert_eq!(dist.halo_exchanges, expected);
    }

    #[test]
    fn decomposition_preserves_flow_development() {
        let (mesh, cfg) = case();
        let dist = run_distributed(&mesh, &cfg, 4, 60);
        // flow developed: positive axial velocity mid-tube
        let plane = mesh.nx * mesh.ny;
        let mid = &dist.w[12 * plane..13 * plane];
        let max = mid.iter().cloned().fold(0.0_f64, f64::max);
        assert!(max > 0.02, "max={max}");
    }
}
