//! The wall-mechanics "solid code" of the FSI pair.
//!
//! A viscoelastic (Voigt) radial model per axial station: the wall area
//! relaxes toward the elastic equilibrium of the tube law under the fluid
//! pressure,
//!
//! ```text
//! η·dA/dt = p_fluid − β(√A − √A₀)
//! ```
//!
//! integrated with sub-stepped explicit Euler (the equation is stiff for
//! small η, so the sub-step count adapts). In the stiff limit (η → 0) the
//! wall reproduces the pure elastic tube law — which is how the coupled
//! FSI tests anchor themselves to the standalone fluid solution.

/// Wall parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct WallConfig {
    /// Stations (must match the fluid grid).
    pub n: usize,
    /// Elastic stiffness β (same as the fluid's tube law).
    pub beta: f64,
    /// Reference area A₀.
    pub a0: f64,
    /// Viscous coefficient η (dyn·s/cm³ per cm²); smaller = stiffer.
    pub eta: f64,
}

/// The solid code.
#[derive(Debug, Clone)]
pub struct WallSolver {
    /// Parameters.
    pub cfg: WallConfig,
    /// Wall cross-section area per station.
    pub a: Vec<f64>,
}

impl WallSolver {
    /// A wall at its reference area.
    pub fn new(cfg: WallConfig) -> WallSolver {
        let a = vec![cfg.a0; cfg.n];
        WallSolver { cfg, a }
    }

    /// Elastic equilibrium area under pressure `p`: invert
    /// `p = β(√A − √A₀)`.
    pub fn equilibrium_area(&self, p: f64) -> f64 {
        let root = p / self.cfg.beta + self.cfg.a0.sqrt();
        (root.max(1e-6)).powi(2)
    }

    /// Advance the wall by `dt` under the given fluid pressures.
    ///
    /// # Panics
    /// Panics if `pressures.len()` differs from the station count.
    pub fn step(&mut self, pressures: &[f64], dt: f64) {
        assert_eq!(pressures.len(), self.cfg.n, "station mismatch");
        let beta = self.cfg.beta;
        let a0s = self.cfg.a0.sqrt();
        let eta = self.cfg.eta.max(1e-12);
        // stability of explicit Euler on the linearized equation requires
        // sub_dt < 2*eta/(beta/(2*sqrt(A))); sub-step conservatively
        let stiffness = beta / (2.0 * self.cfg.a0.sqrt());
        let max_sub_dt = eta / stiffness;
        let substeps = ((dt / max_sub_dt).ceil() as usize).clamp(1, 10_000);
        let sub_dt = dt / substeps as f64;
        for (a, &p) in self.a.iter_mut().zip(pressures) {
            for _ in 0..substeps {
                let restoring = beta * (a.sqrt() - a0s);
                *a += sub_dt * (p - restoring) / eta;
                *a = a.max(1e-6);
            }
        }
    }

    /// The wall's own pressure (tube law at the wall's current area).
    pub fn pressures(&self) -> Vec<f64> {
        let a0s = self.cfg.a0.sqrt();
        self.a
            .iter()
            .map(|a| self.cfg.beta * (a.sqrt() - a0s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WallConfig {
        WallConfig {
            n: 8,
            beta: 4.0e4,
            a0: 3.0,
            eta: 50.0,
        }
    }

    #[test]
    fn zero_pressure_is_equilibrium() {
        let mut w = WallSolver::new(cfg());
        w.step(&[0.0; 8], 0.01);
        for &a in &w.a {
            assert!((a - 3.0).abs() < 1e-9, "A={a}");
        }
    }

    #[test]
    fn relaxes_to_elastic_equilibrium() {
        let mut w = WallSolver::new(cfg());
        let p = 5_000.0;
        let target = w.equilibrium_area(p);
        // plenty of time to relax
        for _ in 0..200 {
            w.step(&[p; 8], 0.01);
        }
        for &a in &w.a {
            let rel = (a - target).abs() / target;
            assert!(rel < 1e-6, "A={a} target={target}");
        }
        assert!(target > 3.0, "positive pressure distends");
    }

    #[test]
    fn equilibrium_area_inverts_tube_law() {
        let w = WallSolver::new(cfg());
        for p in [-3_000.0, 0.0, 2_000.0, 10_000.0] {
            let a = w.equilibrium_area(p);
            let back = w.cfg.beta * (a.sqrt() - w.cfg.a0.sqrt());
            assert!((back - p).abs() < 1e-6, "p={p} back={back}");
        }
    }

    #[test]
    fn stiffer_wall_relaxes_faster() {
        let p = vec![4_000.0; 8];
        let mut soft = WallSolver::new(WallConfig {
            eta: 500.0,
            ..cfg()
        });
        let mut stiff = WallSolver::new(WallConfig { eta: 5.0, ..cfg() });
        soft.step(&p, 0.005);
        stiff.step(&p, 0.005);
        let target = soft.equilibrium_area(4_000.0);
        let d_soft = (soft.a[0] - target).abs();
        let d_stiff = (stiff.a[0] - target).abs();
        assert!(d_stiff < d_soft, "stiff {d_stiff} vs soft {d_soft}");
    }

    #[test]
    fn wall_pressure_consistent_with_area() {
        let mut w = WallSolver::new(cfg());
        for _ in 0..500 {
            w.step(&[2_500.0; 8], 0.01);
        }
        for p in w.pressures() {
            assert!((p - 2_500.0).abs() / 2_500.0 < 1e-6, "p={p}");
        }
    }
}
