//! The artery geometry: a circular tube masked out of a Cartesian grid.
//!
//! Grid units: spacing `h = 1`, so all solver parameters are expressed in
//! grid units. The tube axis runs along `z`; a cell is *active* (fluid) if
//! its centre lies within the tube radius.

/// `x−` in-plane neighbour is fluid (see [`CrossCell::nb`]).
pub const NB_XM: u8 = 1;
/// `x+` in-plane neighbour is fluid.
pub const NB_XP: u8 = 2;
/// `y−` in-plane neighbour is fluid.
pub const NB_YM: u8 = 4;
/// `y+` in-plane neighbour is fluid.
pub const NB_YP: u8 = 8;

/// One fluid cell of the tube cross-section.
///
/// Because the cylinder mask does not depend on `z`, a single list of these
/// describes the fluid cells of *every* plane: solver kernels iterate the
/// list instead of scanning (and branching on) the full `nx × ny` plane,
/// and read the precomputed neighbour bits instead of re-testing the mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossCell {
    /// In-plane flat offset `i + nx*j`.
    pub o: u32,
    /// Bitmask of which in-plane neighbours are fluid:
    /// [`NB_XM`] | [`NB_XP`] | [`NB_YM`] | [`NB_YP`]. The `z` neighbours of
    /// a fluid cell are always fluid (within the grid) and need no bits.
    pub nb: u8,
}

/// A cylinder-masked structured mesh.
#[derive(Debug, Clone, PartialEq)]
pub struct TubeMesh {
    /// Cells along x.
    pub nx: usize,
    /// Cells along y.
    pub ny: usize,
    /// Cells along z (the tube axis).
    pub nz: usize,
    /// Tube radius in cells.
    pub radius: f64,
    /// Active-cell mask, indexed `i + nx*(j + ny*k)`.
    mask: Vec<bool>,
    /// Number of active cells.
    active: usize,
    /// Active cells in one z-plane (the tube cross-section).
    cross_section: usize,
    /// The fluid cells of one z-plane, in `i + nx*j` order.
    cross_cells: Vec<CrossCell>,
}

impl TubeMesh {
    /// A tube of `radius_cells` inscribed in an `nx × ny × nz` grid.
    ///
    /// # Panics
    /// Panics if the radius does not fit the cross-section or any dimension
    /// is below 3 (stencils need interior cells).
    pub fn cylinder(nx: usize, ny: usize, nz: usize, radius_cells: f64) -> TubeMesh {
        assert!(nx >= 3 && ny >= 3 && nz >= 3, "mesh too small for stencils");
        assert!(
            radius_cells > 1.0 && 2.0 * radius_cells <= (nx.min(ny) as f64),
            "radius must fit the cross-section"
        );
        let (cx, cy) = (((nx - 1) as f64) / 2.0, ((ny - 1) as f64) / 2.0);
        let mut mask = vec![false; nx * ny * nz];
        let mut cross_section = 0;
        for j in 0..ny {
            for i in 0..nx {
                let dx = i as f64 - cx;
                let dy = j as f64 - cy;
                if dx * dx + dy * dy <= radius_cells * radius_cells {
                    cross_section += 1;
                    for k in 0..nz {
                        mask[i + nx * (j + ny * k)] = true;
                    }
                }
            }
        }
        assert!(cross_section > 0, "empty cross-section");
        let at = |i: isize, j: isize| -> bool {
            i >= 0
                && j >= 0
                && (i as usize) < nx
                && (j as usize) < ny
                && mask[i as usize + nx * j as usize]
        };
        let mut cross_cells = Vec::with_capacity(cross_section);
        for j in 0..ny {
            for i in 0..nx {
                if !mask[i + nx * j] {
                    continue;
                }
                let (si, sj) = (i as isize, j as isize);
                let mut nb = 0u8;
                if at(si - 1, sj) {
                    nb |= NB_XM;
                }
                if at(si + 1, sj) {
                    nb |= NB_XP;
                }
                if at(si, sj - 1) {
                    nb |= NB_YM;
                }
                if at(si, sj + 1) {
                    nb |= NB_YP;
                }
                cross_cells.push(CrossCell {
                    o: (i + nx * j) as u32,
                    nb,
                });
            }
        }
        TubeMesh {
            nx,
            ny,
            nz,
            radius: radius_cells,
            active: cross_section * nz,
            mask,
            cross_section,
            cross_cells,
        }
    }

    /// The fluid cells of one z-plane with their in-plane neighbour bits,
    /// in ascending `i + nx*j` order. Valid for every plane.
    #[inline]
    pub fn cross_cells(&self) -> &[CrossCell] {
        &self.cross_cells
    }

    /// Flat index of `(i, j, k)`.
    #[inline]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        i + self.nx * (j + self.ny * k)
    }

    /// Whether `(i, j, k)` is a fluid cell (false outside the grid).
    #[inline]
    pub fn is_active(&self, i: isize, j: isize, k: isize) -> bool {
        if i < 0 || j < 0 || k < 0 {
            return false;
        }
        let (i, j, k) = (i as usize, j as usize, k as usize);
        if i >= self.nx || j >= self.ny || k >= self.nz {
            return false;
        }
        self.mask[self.idx(i, j, k)]
    }

    /// Whether the flat-indexed cell is fluid.
    #[inline]
    pub fn active_flat(&self, idx: usize) -> bool {
        self.mask[idx]
    }

    /// Total fluid cells.
    pub fn active_cells(&self) -> usize {
        self.active
    }

    /// Fluid cells per z-plane.
    pub fn cross_section_cells(&self) -> usize {
        self.cross_section
    }

    /// Total cells (active + masked).
    pub fn total_cells(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Squared distance of a cell centre from the tube axis, in cells².
    #[inline]
    pub fn r2(&self, i: usize, j: usize) -> f64 {
        let dx = i as f64 - ((self.nx - 1) as f64) / 2.0;
        let dy = j as f64 - ((self.ny - 1) as f64) / 2.0;
        dx * dx + dy * dy
    }

    /// The parabolic inflow profile value at `(i, j)`: `1 - (r/R)²` clamped
    /// at zero (peak 1 on the axis, 0 at the wall).
    pub fn inflow_profile(&self, i: usize, j: usize) -> f64 {
        (1.0 - self.r2(i, j) / (self.radius * self.radius)).max(0.0)
    }

    /// Split `nz` planes into `ranks` contiguous slabs; returns `(k0, k1)`
    /// half-open plane ranges per rank, as even as possible.
    pub fn slab_ranges(&self, ranks: usize) -> Vec<(usize, usize)> {
        assert!(ranks >= 1 && ranks <= self.nz, "more slabs than planes");
        let base = self.nz / ranks;
        let extra = self.nz % ranks;
        let mut out = Vec::with_capacity(ranks);
        let mut start = 0;
        for r in 0..ranks {
            let len = base + usize::from(r < extra);
            out.push((start, start + len));
            start += len;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cylinder_geometry() {
        let m = TubeMesh::cylinder(16, 16, 32, 6.0);
        assert_eq!(m.total_cells(), 16 * 16 * 32);
        // cross-section ~ pi R^2 = 113, grid-quantized
        let cs = m.cross_section_cells();
        assert!((100..=125).contains(&cs), "cs={cs}");
        assert_eq!(m.active_cells(), cs * 32);
        // axis active, corner not
        assert!(m.is_active(7, 7, 0));
        assert!(!m.is_active(0, 0, 0));
        assert!(!m.is_active(-1, 7, 0));
        assert!(!m.is_active(7, 7, 32));
    }

    #[test]
    fn inflow_profile_shape() {
        let m = TubeMesh::cylinder(17, 17, 8, 7.0);
        // peak at centre (grid (8,8) for nx=17)
        let centre = m.inflow_profile(8, 8);
        assert!((centre - 1.0).abs() < 1e-12);
        assert!(m.inflow_profile(8, 12) < centre);
        assert_eq!(m.inflow_profile(0, 0), 0.0);
    }

    #[test]
    fn slabs_cover_exactly() {
        let m = TubeMesh::cylinder(8, 8, 37, 3.0);
        for ranks in [1usize, 2, 3, 5, 8, 37] {
            let slabs = m.slab_ranges(ranks);
            assert_eq!(slabs.len(), ranks);
            assert_eq!(slabs[0].0, 0);
            assert_eq!(slabs.last().unwrap().1, 37);
            for w in slabs.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous");
                assert!(w[0].1 > w[0].0, "non-empty");
            }
            // balance within one plane
            let sizes: Vec<usize> = slabs.iter().map(|(a, b)| b - a).collect();
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1);
        }
    }

    #[test]
    #[should_panic(expected = "radius must fit")]
    fn oversized_radius_rejected() {
        TubeMesh::cylinder(8, 8, 8, 5.0);
    }

    #[test]
    fn cross_cells_match_mask() {
        let m = TubeMesh::cylinder(16, 16, 8, 6.0);
        assert_eq!(m.cross_cells().len(), m.cross_section_cells());
        let mut seen = 0;
        for c in m.cross_cells() {
            let o = c.o as usize;
            let (i, j) = ((o % m.nx) as isize, (o / m.nx) as isize);
            assert!(m.is_active(i, j, 0));
            assert_eq!(c.nb & NB_XM != 0, m.is_active(i - 1, j, 0));
            assert_eq!(c.nb & NB_XP != 0, m.is_active(i + 1, j, 0));
            assert_eq!(c.nb & NB_YM != 0, m.is_active(i, j - 1, 0));
            assert_eq!(c.nb & NB_YP != 0, m.is_active(i, j + 1, 0));
            // and the same neighbour relations hold on every other plane
            for k in 1..m.nz as isize {
                assert!(m.is_active(i, j, k));
            }
            seen += 1;
        }
        assert_eq!(seen, m.cross_section_cells());
        // ascending in-plane order (the sweep order of the solver kernels)
        for w in m.cross_cells().windows(2) {
            assert!(w[0].o < w[1].o);
        }
    }

    #[test]
    fn flat_index_consistency() {
        let m = TubeMesh::cylinder(9, 9, 9, 3.5);
        for k in 0..9 {
            for j in 0..9 {
                for i in 0..9 {
                    assert_eq!(
                        m.active_flat(m.idx(i, j, k)),
                        m.is_active(i as isize, j as isize, k as isize)
                    );
                }
            }
        }
    }
}
