//! The CFD artery case: 3D incompressible Navier–Stokes in a masked tube.
//!
//! Chorin's fractional-step method on a collocated grid (spacing 1):
//!
//! 1. **Momentum**: explicit tentative velocity — first-order upwind
//!    advection + central diffusion (robust and positivity-preserving at
//!    the resolutions the mini-app runs).
//! 2. **Projection**: a pressure Poisson equation with mask-aware 7-point
//!    Laplacian — Neumann at walls and inlet, Dirichlet `p = 0` at the
//!    outlet — solved by conjugate gradients (warm-started from the
//!    previous step's pressure).
//! 3. **Correction**: project the velocity onto the divergence-free space.
//!
//! Boundary conditions: parabolic (Poiseuille) inflow at `z = 0`,
//! zero-gradient outflow at `z = nz-1`, no-slip at the tube wall (masked
//! cells read as zero velocity).
//!
//! # Kernel structure
//!
//! The hot kernels iterate the mesh's precomputed cross-section list
//! ([`TubeMesh::cross_cells`]) — only fluid cells, with in-plane neighbour
//! activity read from precomputed bits instead of mask probes, and the `z`
//! neighbours resolved structurally (the cylinder mask is z-invariant).
//! Masked cells of every field are **never written**: they are zero from
//! construction and stay zero, which is exactly what the old
//! write-zero-every-sweep kernels produced, so the full-array dot products
//! and axpy updates of the CG solve are untouched and every result is
//! bit-for-bit identical. The serial path fuses each momentum plane with
//! the divergence of the plane below it so the tentative field is consumed
//! while still in cache; the parallel path runs plane-parallel momentum and
//! a cache-blocked CG matvec through `harborsim-par` (dot products stay
//! serial, keeping results independent of thread count).
//!
//! The solver counts its floating-point work; those counters are the ground
//! truth behind [`crate::workload`]'s flop constants.

use crate::mesh::{TubeMesh, NB_XM, NB_XP, NB_YM, NB_YP};
use harborsim_par::prelude::*;

/// Flop cost per active interior cell of one momentum evaluation
/// (3 components × (upwind advection + diffusion + update)).
pub const FLOPS_MOMENTUM: f64 = 117.0;
/// Flop cost per active cell of the divergence/RHS evaluation.
pub const FLOPS_DIVERGENCE: f64 = 12.0;
/// Flop cost per unknown cell of one CG iteration (matvec + 2 dots + 3
/// axpy-likes).
pub const FLOPS_CG_ITER: f64 = 27.0;
/// Flop cost per active cell of the velocity correction.
pub const FLOPS_CORRECTION: f64 = 18.0;

/// Planes per task of the cache-blocked parallel CG matvec: adjacent planes
/// share their z-neighbour reads, so a small block keeps them resident
/// while amortizing per-task scheduling cost.
const LAP_KBLOCK: usize = 4;

/// Solver configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CfdConfig {
    /// Kinematic viscosity (grid units).
    pub nu: f64,
    /// Time step (grid units); see [`CfdConfig::stable_dt`].
    pub dt: f64,
    /// Peak inflow velocity on the tube axis.
    pub inflow_peak: f64,
    /// CG relative residual tolerance.
    pub cg_tol: f64,
    /// CG iteration cap per step.
    pub cg_max_iters: usize,
    /// Use Rayon for the element-wise kernels (dot products stay serial so
    /// results are bit-reproducible regardless of thread count).
    pub parallel: bool,
    /// Pulsatile inflow `(relative amplitude, period)`: the inflow peak is
    /// modulated as `1 + amp·sin(2πt/T)`. `None` = steady inflow.
    pub pulsatile: Option<(f64, f64)>,
}

impl CfdConfig {
    /// A stable configuration for a given mesh: viscosity from the target
    /// Reynolds number and a CFL-limited time step.
    pub fn stable(mesh: &TubeMesh, reynolds: f64, inflow_peak: f64) -> CfdConfig {
        let nu = inflow_peak * 2.0 * mesh.radius / reynolds;
        let dt = Self::stable_dt(nu, inflow_peak);
        CfdConfig {
            nu,
            dt,
            inflow_peak,
            cg_tol: 1e-8,
            cg_max_iters: 500,
            parallel: false,
            pulsatile: None,
        }
    }

    /// The advective/diffusive stability limit (h = 1).
    pub fn stable_dt(nu: f64, peak_velocity: f64) -> f64 {
        let adv = 1.0 / peak_velocity.abs().max(1e-12);
        let diff = 1.0 / (6.0 * nu.max(1e-12));
        0.35 * adv.min(diff)
    }
}

/// Work counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolverStats {
    /// Time steps taken.
    pub steps: u64,
    /// Total CG iterations.
    pub cg_iters: u64,
    /// Estimated floating-point operations executed.
    pub flops: f64,
}

/// The solver state.
#[derive(Debug, Clone)]
pub struct CfdSolver {
    /// Geometry.
    pub mesh: TubeMesh,
    /// Configuration.
    pub cfg: CfdConfig,
    /// x-velocity.
    pub u: Vec<f64>,
    /// y-velocity.
    pub v: Vec<f64>,
    /// z-velocity (axial).
    pub w: Vec<f64>,
    /// Pressure.
    pub p: Vec<f64>,
    /// Work counters.
    pub stats: SolverStats,
    /// Simulated physical time.
    pub time: f64,
    // Scratch fields. Invariant: masked cells of all of these are zero —
    // kernels only ever write fluid cells, so the zeros from construction
    // persist (and the wall boundary conditions depend on that).
    us: Vec<f64>,
    vs: Vec<f64>,
    ws: Vec<f64>,
    rhs: Vec<f64>,
    cg_r: Vec<f64>,
    cg_d: Vec<f64>,
    cg_ap: Vec<f64>,
}

/// Tentative-velocity kernel for one interior plane `k`, over the fluid
/// cross-section only.
#[allow(clippy::too_many_arguments)]
fn momentum_plane_kernel(
    mesh: &TubeMesh,
    u: &[f64],
    v: &[f64],
    w: &[f64],
    nu: f64,
    dt: f64,
    k: usize,
    us_k: &mut [f64],
    vs_k: &mut [f64],
    ws_k: &mut [f64],
) {
    let nx = mesh.nx;
    let plane = nx * mesh.ny;
    let base = plane * k;
    for c in mesh.cross_cells() {
        let o = c.o as usize;
        let idx = base + o;
        let nb = c.nb;
        let (uc, vc, wc) = (u[idx], v[idx], w[idx]);
        // neighbour fetch with no-slip (0) ghosts at walls; z-neighbours of
        // an interior-plane fluid cell are always fluid (z-invariant mask)
        let upd = |f: &[f64]| -> f64 {
            let cv = f[idx];
            let xm = if nb & NB_XM != 0 { f[idx - 1] } else { 0.0 };
            let xp = if nb & NB_XP != 0 { f[idx + 1] } else { 0.0 };
            let ym = if nb & NB_YM != 0 { f[idx - nx] } else { 0.0 };
            let yp = if nb & NB_YP != 0 { f[idx + nx] } else { 0.0 };
            let zm = f[idx - plane];
            let zp = f[idx + plane];
            // upwind advection
            let dfdx = if uc > 0.0 { cv - xm } else { xp - cv };
            let dfdy = if vc > 0.0 { cv - ym } else { yp - cv };
            let dfdz = if wc > 0.0 { cv - zm } else { zp - cv };
            let adv = uc * dfdx + vc * dfdy + wc * dfdz;
            let lap = xm + xp + ym + yp + zm + zp - 6.0 * cv;
            cv + dt * (nu * lap - adv)
        };
        us_k[o] = upd(u);
        vs_k[o] = upd(v);
        ws_k[o] = upd(w);
    }
}

impl CfdSolver {
    /// A solver at rest (zero velocity everywhere).
    pub fn new(mesh: TubeMesh, cfg: CfdConfig) -> CfdSolver {
        let n = mesh.total_cells();
        CfdSolver {
            mesh,
            cfg,
            u: vec![0.0; n],
            v: vec![0.0; n],
            w: vec![0.0; n],
            p: vec![0.0; n],
            stats: SolverStats::default(),
            time: 0.0,
            us: vec![0.0; n],
            vs: vec![0.0; n],
            ws: vec![0.0; n],
            rhs: vec![0.0; n],
            cg_r: vec![0.0; n],
            cg_d: vec![0.0; n],
            cg_ap: vec![0.0; n],
        }
    }

    /// Advance `steps` time steps.
    pub fn run(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// One fractional-step update.
    pub fn step(&mut self) {
        self.apply_inflow();
        self.apply_outflow_velocity();
        self.tentative_and_rhs();
        let iters = self.pressure_solve();
        self.correct();
        self.stats.steps += 1;
        self.stats.cg_iters += iters as u64;
        let active = self.mesh.active_cells() as f64;
        self.stats.flops += active
            * (FLOPS_MOMENTUM + FLOPS_DIVERGENCE + FLOPS_CORRECTION + FLOPS_CG_ITER * iters as f64);
        self.time += self.cfg.dt;
    }

    /// The inflow peak at the current time (pulsatile modulation applied).
    pub fn current_inflow_peak(&self) -> f64 {
        match self.cfg.pulsatile {
            None => self.cfg.inflow_peak,
            Some((amp, period)) => {
                self.cfg.inflow_peak
                    * (1.0 + amp * (2.0 * std::f64::consts::PI * self.time / period).sin())
            }
        }
    }

    /// Fix the inflow plane (`k = 0`): parabolic axial velocity.
    fn apply_inflow(&mut self) {
        let peak = self.current_inflow_peak();
        let nx = self.mesh.nx;
        let (u, v, w) = (&mut self.u, &mut self.v, &mut self.w);
        for c in self.mesh.cross_cells() {
            let o = c.o as usize;
            u[o] = 0.0;
            v[o] = 0.0;
            w[o] = peak * self.mesh.inflow_profile(o % nx, o / nx);
        }
    }

    /// Zero-gradient outflow (`k = nz-1` copies `nz-2`).
    fn apply_outflow_velocity(&mut self) {
        let (nx, ny, nz) = (self.mesh.nx, self.mesh.ny, self.mesh.nz);
        let plane = nx * ny;
        let (last, prev) = ((nz - 1) * plane, (nz - 2) * plane);
        for o in 0..plane {
            self.u[last + o] = self.u[prev + o];
            self.v[last + o] = self.v[prev + o];
            self.w[last + o] = self.w[prev + o];
        }
    }

    /// Tentative velocity for interior planes `1..nz-1` plus the Poisson
    /// RHS `div(u*)/dt` for planes `0..nz-1`.
    ///
    /// Serial: a fused sweep — each momentum plane is followed immediately
    /// by the divergence of the plane below it (its last dependency), so
    /// the freshly written tentative planes are consumed while still hot.
    /// Parallel: plane-parallel momentum, then the divergence sweep; each
    /// cell's arithmetic is identical either way, so the two paths agree
    /// bitwise.
    fn tentative_and_rhs(&mut self) {
        let (nz, plane) = (self.mesh.nz, self.mesh.nx * self.mesh.ny);
        // inlet plane of the tentative field: keep BC values
        self.us[..plane].copy_from_slice(&self.u[..plane]);
        self.vs[..plane].copy_from_slice(&self.v[..plane]);
        self.ws[..plane].copy_from_slice(&self.w[..plane]);
        if self.cfg.parallel {
            let mesh = &self.mesh;
            let (u, v, w) = (&self.u, &self.v, &self.w);
            let (nu, dt) = (self.cfg.nu, self.cfg.dt);
            self.us
                .par_chunks_mut(plane)
                .zip(self.vs.par_chunks_mut(plane))
                .zip(self.ws.par_chunks_mut(plane))
                .enumerate()
                .filter(|(k, _)| *k >= 1 && *k < nz - 1)
                .for_each(|(k, ((us_k, vs_k), ws_k))| {
                    momentum_plane_kernel(mesh, u, v, w, nu, dt, k, us_k, vs_k, ws_k)
                });
            self.copy_outflow_tentative();
            for k in 0..nz - 1 {
                self.divergence_plane(k);
            }
        } else {
            for m in 1..nz - 1 {
                self.momentum_plane(m);
                self.divergence_plane(m - 1);
            }
            self.copy_outflow_tentative();
            self.divergence_plane(nz - 2);
        }
    }

    /// One serial momentum plane.
    fn momentum_plane(&mut self, k: usize) {
        let plane = self.mesh.nx * self.mesh.ny;
        let range = k * plane..(k + 1) * plane;
        momentum_plane_kernel(
            &self.mesh,
            &self.u,
            &self.v,
            &self.w,
            self.cfg.nu,
            self.cfg.dt,
            k,
            &mut self.us[range.clone()],
            &mut self.vs[range.clone()],
            &mut self.ws[range],
        );
    }

    /// Zero-gradient outflow plane of the tentative field.
    fn copy_outflow_tentative(&mut self) {
        let plane = self.mesh.nx * self.mesh.ny;
        let last = (self.mesh.nz - 1) * plane;
        let prev = (self.mesh.nz - 2) * plane;
        let (lo, hi) = self.us.split_at_mut(last);
        hi.copy_from_slice(&lo[prev..prev + plane]);
        let (lo, hi) = self.vs.split_at_mut(last);
        hi.copy_from_slice(&lo[prev..prev + plane]);
        let (lo, hi) = self.ws.split_at_mut(last);
        hi.copy_from_slice(&lo[prev..prev + plane]);
    }

    /// Poisson RHS on the fluid cells of plane `k < nz-1`. Masked cells and
    /// the outlet plane keep their zero-from-construction RHS (they are
    /// not pressure unknowns).
    fn divergence_plane(&mut self, k: usize) {
        let nx = self.mesh.nx;
        let plane = nx * self.mesh.ny;
        let base = plane * k;
        let dt = self.cfg.dt;
        let (us, vs, ws) = (&self.us, &self.vs, &self.ws);
        let rhs = &mut self.rhs;
        for c in self.mesh.cross_cells() {
            let o = c.o as usize;
            let idx = base + o;
            let nb = c.nb;
            // central differences; wall neighbours contribute 0 velocity,
            // the upstream ghost repeats the inlet value
            let uxp = if nb & NB_XP != 0 { us[idx + 1] } else { 0.0 };
            let uxm = if nb & NB_XM != 0 { us[idx - 1] } else { 0.0 };
            let dudx = (uxp - uxm) / 2.0;
            let vyp = if nb & NB_YP != 0 { vs[idx + nx] } else { 0.0 };
            let vym = if nb & NB_YM != 0 { vs[idx - nx] } else { 0.0 };
            let dvdy = (vyp - vym) / 2.0;
            let wzm = if k == 0 { ws[idx] } else { ws[idx - plane] };
            let dwdz = (ws[idx + plane] - wzm) / 2.0;
            rhs[idx] = (dudx + dvdy + dwdz) / dt;
        }
    }

    /// Whether a cell is a pressure unknown.
    #[inline]
    fn is_unknown(&self, i: usize, j: usize, k: usize) -> bool {
        k < self.mesh.nz - 1 && self.mesh.active_flat(self.mesh.idx(i, j, k))
    }

    /// `y = A x` where `A` is the negated mask-aware Laplacian (SPD), over
    /// the fluid cells of the unknown planes only. Masked cells and the
    /// outlet plane of `y` are never written — zero from construction.
    fn apply_laplacian(mesh: &TubeMesh, x: &[f64], y: &mut [f64], parallel: bool) {
        let (nx, ny, nz) = (mesh.nx, mesh.ny, mesh.nz);
        let plane = nx * ny;
        let kernel = |k: usize, y_k: &mut [f64]| {
            if k >= nz - 1 {
                return;
            }
            let base = plane * k;
            let outlet_above = k + 1 == nz - 1;
            for c in mesh.cross_cells() {
                let o = c.o as usize;
                let idx = base + o;
                let nb = c.nb;
                let xc = x[idx];
                let mut acc = 0.0;
                // same neighbour order as the 7-point stencil sweep:
                // x−, x+, y−, y+, z−, z+; inactive / out of domain means
                // Neumann and contributes 0; in-plane unknowns are never
                // on the outlet plane, so only z+ can hit the Dirichlet
                // p = 0 ghost
                if nb & NB_XM != 0 {
                    acc += xc - x[idx - 1];
                }
                if nb & NB_XP != 0 {
                    acc += xc - x[idx + 1];
                }
                if nb & NB_YM != 0 {
                    acc += xc - x[idx - nx];
                }
                if nb & NB_YP != 0 {
                    acc += xc - x[idx + nx];
                }
                if k > 0 {
                    acc += xc - x[idx - plane];
                }
                if outlet_above {
                    acc += xc;
                } else {
                    acc += xc - x[idx + plane];
                }
                y_k[o] = acc;
            }
        };
        if parallel {
            // cache-blocked: LAP_KBLOCK adjacent planes per task
            y.par_chunks_mut(plane * LAP_KBLOCK)
                .enumerate()
                .for_each(|(b, y_b)| {
                    for (dk, y_k) in y_b.chunks_mut(plane).enumerate() {
                        kernel(b * LAP_KBLOCK + dk, y_k);
                    }
                });
        } else {
            for (k, y_k) in y.chunks_mut(plane).enumerate() {
                kernel(k, y_k);
            }
        }
    }

    fn dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// CG on `A p = -rhs`; returns iterations used.
    fn pressure_solve(&mut self) -> usize {
        let parallel = self.cfg.parallel;
        // r = b - A p with b = -rhs, warm-started from the previous
        // pressure; the negation happens term-by-term, exactly as the
        // former explicit b vector
        Self::apply_laplacian(&self.mesh, &self.p, &mut self.cg_ap, parallel);
        for i in 0..self.cg_r.len() {
            self.cg_r[i] = -self.rhs[i] - self.cg_ap[i];
        }
        // mask r to unknowns (p may carry stale outlet values)
        let (nx, ny, nz) = (self.mesh.nx, self.mesh.ny, self.mesh.nz);
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    if !self.is_unknown(i, j, k) {
                        let idx = self.mesh.idx(i, j, k);
                        self.cg_r[idx] = 0.0;
                    }
                }
            }
        }
        self.cg_d.copy_from_slice(&self.cg_r);
        // ‖b‖ = ‖−rhs‖ term-by-term: (−x)·(−x) ≡ x·x
        let bnorm = Self::dot(&self.rhs, &self.rhs).sqrt().max(1e-300);
        let mut rs = Self::dot(&self.cg_r, &self.cg_r);
        if rs.sqrt() <= self.cfg.cg_tol * bnorm {
            return 0;
        }
        for it in 1..=self.cfg.cg_max_iters {
            Self::apply_laplacian(&self.mesh, &self.cg_d, &mut self.cg_ap, parallel);
            let dad = Self::dot(&self.cg_d, &self.cg_ap);
            if dad <= 0.0 {
                return it; // numerically singular direction; accept current p
            }
            let alpha = rs / dad;
            for i in 0..self.p.len() {
                self.p[i] += alpha * self.cg_d[i];
                self.cg_r[i] -= alpha * self.cg_ap[i];
            }
            let rs_new = Self::dot(&self.cg_r, &self.cg_r);
            if rs_new.sqrt() <= self.cfg.cg_tol * bnorm {
                return it;
            }
            let beta = rs_new / rs;
            rs = rs_new;
            for i in 0..self.p.len() {
                self.cg_d[i] = self.cg_r[i] + beta * self.cg_d[i];
            }
        }
        self.cfg.cg_max_iters
    }

    /// Velocity correction `u = u* − dt ∇p` on interior fluid cells.
    fn correct(&mut self) {
        let nx = self.mesh.nx;
        let nz = self.mesh.nz;
        let plane = nx * self.mesh.ny;
        let dt = self.cfg.dt;
        let p = &self.p;
        let (us, vs, ws) = (&self.us, &self.vs, &self.ws);
        let (u, v, w) = (&mut self.u, &mut self.v, &mut self.w);
        for k in 1..nz - 1 {
            let base = plane * k;
            let outlet_above = k + 1 == nz - 1;
            for c in self.mesh.cross_cells() {
                let o = c.o as usize;
                let idx = base + o;
                let nb = c.nb;
                let pc = p[idx];
                // wall neighbours: Neumann ghost repeats the centre value;
                // outlet plane: Dirichlet p = 0
                let xp = if nb & NB_XP != 0 { p[idx + 1] } else { pc };
                let xm = if nb & NB_XM != 0 { p[idx - 1] } else { pc };
                let yp = if nb & NB_YP != 0 { p[idx + nx] } else { pc };
                let ym = if nb & NB_YM != 0 { p[idx - nx] } else { pc };
                let zp = if outlet_above { 0.0 } else { p[idx + plane] };
                let zm = p[idx - plane];
                u[idx] = us[idx] - dt * (xp - xm) / 2.0;
                v[idx] = vs[idx] - dt * (yp - ym) / 2.0;
                w[idx] = ws[idx] - dt * (zp - zm) / 2.0;
            }
        }
        self.apply_outflow_velocity();
    }

    /// Maximum |div u| over interior active cells — the projection quality.
    pub fn max_divergence(&self) -> f64 {
        let mesh = &self.mesh;
        let (nx, ny, nz) = (mesh.nx, mesh.ny, mesh.nz);
        let plane = nx * ny;
        let mut worst: f64 = 0.0;
        for k in 1..nz - 1 {
            for j in 1..ny - 1 {
                for i in 1..nx - 1 {
                    let idx = i + nx * j + plane * k;
                    if !mesh.active_flat(idx) {
                        continue;
                    }
                    let get = |f: &[f64], di: isize, dj: isize, dk: isize| -> f64 {
                        let (ii, jj, kk) = (i as isize + di, j as isize + dj, k as isize + dk);
                        if mesh.is_active(ii, jj, kk) {
                            f[(ii as usize) + nx * (jj as usize) + plane * (kk as usize)]
                        } else {
                            0.0
                        }
                    };
                    let div = (get(&self.u, 1, 0, 0) - get(&self.u, -1, 0, 0)) / 2.0
                        + (get(&self.v, 0, 1, 0) - get(&self.v, 0, -1, 0)) / 2.0
                        + (get(&self.w, 0, 0, 1) - get(&self.w, 0, 0, -1)) / 2.0;
                    worst = worst.max(div.abs());
                }
            }
        }
        worst
    }

    /// Mean axial velocity over the active cells of plane `k`.
    pub fn mean_axial_velocity(&self, k: usize) -> f64 {
        let (nx, ny) = (self.mesh.nx, self.mesh.ny);
        let mut sum = 0.0;
        let mut n = 0usize;
        for j in 0..ny {
            for i in 0..nx {
                let idx = self.mesh.idx(i, j, k);
                if self.mesh.active_flat(idx) {
                    sum += self.w[idx];
                    n += 1;
                }
            }
        }
        sum / n.max(1) as f64
    }

    /// `(r, w)` samples across plane `k` — the velocity profile.
    pub fn axial_profile(&self, k: usize) -> Vec<(f64, f64)> {
        let (nx, ny) = (self.mesh.nx, self.mesh.ny);
        let mut out = Vec::new();
        for j in 0..ny {
            for i in 0..nx {
                let idx = self.mesh.idx(i, j, k);
                if self.mesh.active_flat(idx) {
                    out.push((self.mesh.r2(i, j).sqrt(), self.w[idx]));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_case() -> CfdSolver {
        let mesh = TubeMesh::cylinder(13, 13, 24, 5.0);
        let cfg = CfdConfig::stable(&mesh, 50.0, 0.1);
        CfdSolver::new(mesh, cfg)
    }

    #[test]
    fn step_is_stable_and_counts_work() {
        let mut s = small_case();
        s.run(20);
        assert_eq!(s.stats.steps, 20);
        assert!(s.stats.cg_iters > 0);
        assert!(s.stats.flops > 1e6);
        // velocities bounded by a modest multiple of the inflow peak
        let wmax = s.w.iter().cloned().fold(0.0_f64, f64::max);
        assert!(wmax.is_finite() && wmax < 0.5, "wmax={wmax}");
    }

    #[test]
    fn projection_reduces_divergence() {
        let mut s = small_case();
        s.run(30);
        let div = s.max_divergence();
        // divergence should be tiny relative to velocity scale / h
        assert!(div < 5e-3, "div={div}");
    }

    #[test]
    fn masked_cells_stay_zero() {
        // the never-write-masked invariant the cross-cell kernels rely on
        let mut s = small_case();
        s.run(15);
        for idx in 0..s.mesh.total_cells() {
            if !s.mesh.active_flat(idx) {
                assert_eq!(s.u[idx], 0.0);
                assert_eq!(s.v[idx], 0.0);
                assert_eq!(s.w[idx], 0.0);
                assert_eq!(s.p[idx], 0.0);
                assert_eq!(s.us[idx], 0.0);
                assert_eq!(s.rhs[idx], 0.0);
                assert_eq!(s.cg_ap[idx], 0.0);
            }
        }
    }

    #[test]
    fn poiseuille_profile_develops() {
        let mesh = TubeMesh::cylinder(13, 13, 40, 5.0);
        let mut cfg = CfdConfig::stable(&mesh, 20.0, 0.08);
        cfg.cg_tol = 1e-9;
        let mut s = CfdSolver::new(mesh, cfg);
        // run long enough to reach steady state
        for _ in 0..40 {
            s.run(25);
        }
        let k = s.mesh.nz / 2;
        let mean = s.mean_axial_velocity(k);
        assert!(mean > 0.01, "flow must develop, mean={mean}");
        // centreline / mean ratio: 2.0 for ideal Poiseuille; coarse grids
        // and entrance effects leave a band
        let profile = s.axial_profile(k);
        let centre = profile
            .iter()
            .filter(|(r, _)| *r < 1.0)
            .map(|(_, w)| *w)
            .fold(0.0_f64, f64::max);
        let ratio = centre / mean;
        assert!(
            (1.5..2.5).contains(&ratio),
            "centre/mean = {ratio}, centre={centre}, mean={mean}"
        );
        // profile must decrease towards the wall
        let near_wall = profile
            .iter()
            .filter(|(r, _)| *r > 4.0)
            .map(|(_, w)| *w)
            .sum::<f64>()
            / profile.iter().filter(|(r, _)| *r > 4.0).count().max(1) as f64;
        assert!(
            near_wall < 0.6 * centre,
            "near_wall={near_wall} centre={centre}"
        );
    }

    #[test]
    fn mass_conservation_along_tube() {
        let mesh = TubeMesh::cylinder(13, 13, 40, 5.0);
        let cfg = CfdConfig::stable(&mesh, 20.0, 0.08);
        let mut s = CfdSolver::new(mesh, cfg);
        for _ in 0..40 {
            s.run(25);
        }
        // steady state: flux through two interior planes must match
        let q1 = s.mean_axial_velocity(10);
        let q2 = s.mean_axial_velocity(30);
        let rel = (q1 - q2).abs() / q1.abs().max(1e-12);
        assert!(rel < 0.08, "flux drift {rel}: q1={q1} q2={q2}");
    }

    #[test]
    fn threaded_matches_serial_bitwise() {
        let mesh = TubeMesh::cylinder(11, 11, 20, 4.0);
        let mut cfg = CfdConfig::stable(&mesh, 30.0, 0.1);
        cfg.parallel = false;
        let mut serial = CfdSolver::new(mesh.clone(), cfg.clone());
        cfg.parallel = true;
        let mut par = CfdSolver::new(mesh, cfg);
        serial.run(10);
        par.run(10);
        assert_eq!(serial.w, par.w, "element-wise kernels must be exact");
        assert_eq!(serial.p, par.p);
        assert_eq!(serial.stats.cg_iters, par.stats.cg_iters);
    }

    #[test]
    fn warm_start_reduces_cg_iterations() {
        let mut s = small_case();
        s.step();
        let first = s.stats.cg_iters;
        let mut before = s.stats.cg_iters;
        let mut later = 0;
        for _ in 0..10 {
            s.step();
            later = s.stats.cg_iters - before;
            before = s.stats.cg_iters;
        }
        assert!(
            later <= first,
            "warm-started steps ({later}) should not exceed the cold start ({first})"
        );
    }

    #[test]
    fn pulsatile_inflow_oscillates_the_flux() {
        let mesh = TubeMesh::cylinder(11, 11, 20, 4.0);
        let mut cfg = CfdConfig::stable(&mesh, 30.0, 0.1);
        let period = 120.0 * cfg.dt;
        cfg.pulsatile = Some((0.5, period));
        let mut s = CfdSolver::new(mesh, cfg);
        // develop the flow, then sample the inflow-plane flux over a cycle
        s.run(240);
        let mut fluxes = Vec::new();
        for _ in 0..120 {
            s.step();
            fluxes.push(s.mean_axial_velocity(1));
        }
        let max = fluxes.iter().cloned().fold(f64::MIN, f64::max);
        let min = fluxes.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max > 1.2 * min.max(1e-9),
            "flux must oscillate over a cycle: min={min} max={max}"
        );
        assert!(fluxes.iter().all(|f| f.is_finite()));
    }

    #[test]
    fn flops_formula_matches_counters() {
        let mut s = small_case();
        s.run(5);
        let active = s.mesh.active_cells() as f64;
        let expected =
            s.stats.steps as f64 * active * (FLOPS_MOMENTUM + FLOPS_DIVERGENCE + FLOPS_CORRECTION)
                + s.stats.cg_iters as f64 * active * FLOPS_CG_ITER;
        let rel = (s.stats.flops - expected).abs() / expected;
        assert!(rel < 1e-12, "rel={rel}");
    }
}
