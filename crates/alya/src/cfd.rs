//! The CFD artery case: 3D incompressible Navier–Stokes in a masked tube.
//!
//! Chorin's fractional-step method on a collocated grid (spacing 1):
//!
//! 1. **Momentum**: explicit tentative velocity — first-order upwind
//!    advection + central diffusion (robust and positivity-preserving at
//!    the resolutions the mini-app runs).
//! 2. **Projection**: a pressure Poisson equation with mask-aware 7-point
//!    Laplacian — Neumann at walls and inlet, Dirichlet `p = 0` at the
//!    outlet — solved by conjugate gradients (warm-started from the
//!    previous step's pressure).
//! 3. **Correction**: project the velocity onto the divergence-free space.
//!
//! Boundary conditions: parabolic (Poiseuille) inflow at `z = 0`,
//! zero-gradient outflow at `z = nz-1`, no-slip at the tube wall (masked
//! cells read as zero velocity).
//!
//! The solver counts its floating-point work; those counters are the ground
//! truth behind [`crate::workload`]'s flop constants.

use crate::mesh::TubeMesh;
use harborsim_par::prelude::*;

/// Flop cost per active interior cell of one momentum evaluation
/// (3 components × (upwind advection + diffusion + update)).
pub const FLOPS_MOMENTUM: f64 = 117.0;
/// Flop cost per active cell of the divergence/RHS evaluation.
pub const FLOPS_DIVERGENCE: f64 = 12.0;
/// Flop cost per unknown cell of one CG iteration (matvec + 2 dots + 3
/// axpy-likes).
pub const FLOPS_CG_ITER: f64 = 27.0;
/// Flop cost per active cell of the velocity correction.
pub const FLOPS_CORRECTION: f64 = 18.0;

/// Solver configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CfdConfig {
    /// Kinematic viscosity (grid units).
    pub nu: f64,
    /// Time step (grid units); see [`CfdConfig::stable_dt`].
    pub dt: f64,
    /// Peak inflow velocity on the tube axis.
    pub inflow_peak: f64,
    /// CG relative residual tolerance.
    pub cg_tol: f64,
    /// CG iteration cap per step.
    pub cg_max_iters: usize,
    /// Use Rayon for the element-wise kernels (dot products stay serial so
    /// results are bit-reproducible regardless of thread count).
    pub parallel: bool,
    /// Pulsatile inflow `(relative amplitude, period)`: the inflow peak is
    /// modulated as `1 + amp·sin(2πt/T)`. `None` = steady inflow.
    pub pulsatile: Option<(f64, f64)>,
}

impl CfdConfig {
    /// A stable configuration for a given mesh: viscosity from the target
    /// Reynolds number and a CFL-limited time step.
    pub fn stable(mesh: &TubeMesh, reynolds: f64, inflow_peak: f64) -> CfdConfig {
        let nu = inflow_peak * 2.0 * mesh.radius / reynolds;
        let dt = Self::stable_dt(nu, inflow_peak);
        CfdConfig {
            nu,
            dt,
            inflow_peak,
            cg_tol: 1e-8,
            cg_max_iters: 500,
            parallel: false,
            pulsatile: None,
        }
    }

    /// The advective/diffusive stability limit (h = 1).
    pub fn stable_dt(nu: f64, peak_velocity: f64) -> f64 {
        let adv = 1.0 / peak_velocity.abs().max(1e-12);
        let diff = 1.0 / (6.0 * nu.max(1e-12));
        0.35 * adv.min(diff)
    }
}

/// Work counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolverStats {
    /// Time steps taken.
    pub steps: u64,
    /// Total CG iterations.
    pub cg_iters: u64,
    /// Estimated floating-point operations executed.
    pub flops: f64,
}

/// The solver state.
#[derive(Debug, Clone)]
pub struct CfdSolver {
    /// Geometry.
    pub mesh: TubeMesh,
    /// Configuration.
    pub cfg: CfdConfig,
    /// x-velocity.
    pub u: Vec<f64>,
    /// y-velocity.
    pub v: Vec<f64>,
    /// z-velocity (axial).
    pub w: Vec<f64>,
    /// Pressure.
    pub p: Vec<f64>,
    /// Work counters.
    pub stats: SolverStats,
    /// Simulated physical time.
    pub time: f64,
    // scratch
    us: Vec<f64>,
    vs: Vec<f64>,
    ws: Vec<f64>,
    rhs: Vec<f64>,
    cg_r: Vec<f64>,
    cg_d: Vec<f64>,
    cg_ap: Vec<f64>,
}

impl CfdSolver {
    /// A solver at rest (zero velocity everywhere).
    pub fn new(mesh: TubeMesh, cfg: CfdConfig) -> CfdSolver {
        let n = mesh.total_cells();
        CfdSolver {
            mesh,
            cfg,
            u: vec![0.0; n],
            v: vec![0.0; n],
            w: vec![0.0; n],
            p: vec![0.0; n],
            stats: SolverStats::default(),
            time: 0.0,
            us: vec![0.0; n],
            vs: vec![0.0; n],
            ws: vec![0.0; n],
            rhs: vec![0.0; n],
            cg_r: vec![0.0; n],
            cg_d: vec![0.0; n],
            cg_ap: vec![0.0; n],
        }
    }

    /// Advance `steps` time steps.
    pub fn run(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// One fractional-step update.
    pub fn step(&mut self) {
        self.apply_inflow();
        self.apply_outflow_velocity();
        self.momentum();
        self.divergence_rhs();
        let iters = self.pressure_solve();
        self.correct();
        self.stats.steps += 1;
        self.stats.cg_iters += iters as u64;
        let active = self.mesh.active_cells() as f64;
        self.stats.flops += active
            * (FLOPS_MOMENTUM + FLOPS_DIVERGENCE + FLOPS_CORRECTION + FLOPS_CG_ITER * iters as f64);
        self.time += self.cfg.dt;
    }

    /// The inflow peak at the current time (pulsatile modulation applied).
    pub fn current_inflow_peak(&self) -> f64 {
        match self.cfg.pulsatile {
            None => self.cfg.inflow_peak,
            Some((amp, period)) => {
                self.cfg.inflow_peak
                    * (1.0 + amp * (2.0 * std::f64::consts::PI * self.time / period).sin())
            }
        }
    }

    /// Fix the inflow plane (`k = 0`): parabolic axial velocity.
    fn apply_inflow(&mut self) {
        let peak = self.current_inflow_peak();
        let (nx, ny) = (self.mesh.nx, self.mesh.ny);
        for j in 0..ny {
            for i in 0..nx {
                let idx = self.mesh.idx(i, j, 0);
                if self.mesh.active_flat(idx) {
                    self.u[idx] = 0.0;
                    self.v[idx] = 0.0;
                    self.w[idx] = peak * self.mesh.inflow_profile(i, j);
                }
            }
        }
    }

    /// Zero-gradient outflow (`k = nz-1` copies `nz-2`).
    fn apply_outflow_velocity(&mut self) {
        let (nx, ny, nz) = (self.mesh.nx, self.mesh.ny, self.mesh.nz);
        let plane = nx * ny;
        let (last, prev) = ((nz - 1) * plane, (nz - 2) * plane);
        for o in 0..plane {
            self.u[last + o] = self.u[prev + o];
            self.v[last + o] = self.v[prev + o];
            self.w[last + o] = self.w[prev + o];
        }
    }

    /// Explicit tentative velocity for interior planes `1..nz-1`.
    fn momentum(&mut self) {
        let mesh = &self.mesh;
        let (nx, ny, nz) = (mesh.nx, mesh.ny, mesh.nz);
        let plane = nx * ny;
        let (u, v, w) = (&self.u, &self.v, &self.w);
        let (nu, dt) = (self.cfg.nu, self.cfg.dt);

        // one output plane at a time; the kernel reads only old fields
        let kernel = |k: usize, us_k: &mut [f64], vs_k: &mut [f64], ws_k: &mut [f64]| {
            for j in 0..ny {
                for i in 0..nx {
                    let o = i + nx * j;
                    let idx = o + plane * k;
                    if !mesh.active_flat(idx) {
                        us_k[o] = 0.0;
                        vs_k[o] = 0.0;
                        ws_k[o] = 0.0;
                        continue;
                    }
                    // neighbour fetch with no-slip (0) ghosts at walls
                    let get = |f: &[f64], di: isize, dj: isize, dk: isize| -> f64 {
                        let (ii, jj, kk) = (i as isize + di, j as isize + dj, k as isize + dk);
                        if mesh.is_active(ii, jj, kk) {
                            f[(ii as usize) + nx * (jj as usize) + plane * (kk as usize)]
                        } else {
                            0.0
                        }
                    };
                    let (uc, vc, wc) = (u[idx], v[idx], w[idx]);
                    let upd = |f: &[f64]| -> f64 {
                        let c = f[idx];
                        let (xm, xp) = (get(f, -1, 0, 0), get(f, 1, 0, 0));
                        let (ym, yp) = (get(f, 0, -1, 0), get(f, 0, 1, 0));
                        let (zm, zp) = (get(f, 0, 0, -1), get(f, 0, 0, 1));
                        // upwind advection
                        let dfdx = if uc > 0.0 { c - xm } else { xp - c };
                        let dfdy = if vc > 0.0 { c - ym } else { yp - c };
                        let dfdz = if wc > 0.0 { c - zm } else { zp - c };
                        let adv = uc * dfdx + vc * dfdy + wc * dfdz;
                        let lap = xm + xp + ym + yp + zm + zp - 6.0 * c;
                        c + dt * (nu * lap - adv)
                    };
                    us_k[o] = upd(u);
                    vs_k[o] = upd(v);
                    ws_k[o] = upd(w);
                }
            }
        };

        let us = &mut self.us;
        let vs = &mut self.vs;
        let ws = &mut self.ws;
        let interior = |k: usize| k >= 1 && k < nz - 1;
        if self.cfg.parallel {
            us.par_chunks_mut(plane)
                .zip(vs.par_chunks_mut(plane))
                .zip(ws.par_chunks_mut(plane))
                .enumerate()
                .filter(|(k, _)| interior(*k))
                .for_each(|(k, ((us_k, vs_k), ws_k))| kernel(k, us_k, vs_k, ws_k));
        } else {
            for k in 1..nz - 1 {
                let (a, b, c) = (
                    &mut us[k * plane..(k + 1) * plane],
                    &mut vs[k * plane..(k + 1) * plane],
                    &mut ws[k * plane..(k + 1) * plane],
                );
                // split borrows via raw slicing is fine: disjoint vectors
                kernel(k, a, b, c);
            }
        }
        // boundary planes of the tentative field: keep BC values
        us[..plane].copy_from_slice(&self.u[..plane]);
        vs[..plane].copy_from_slice(&self.v[..plane]);
        ws[..plane].copy_from_slice(&self.w[..plane]);
        let last = (nz - 1) * plane;
        let prev = (nz - 2) * plane;
        let (lo, hi) = us.split_at_mut(last);
        hi.copy_from_slice(&lo[prev..prev + plane]);
        let (lo, hi) = vs.split_at_mut(last);
        hi.copy_from_slice(&lo[prev..prev + plane]);
        let (lo, hi) = ws.split_at_mut(last);
        hi.copy_from_slice(&lo[prev..prev + plane]);
    }

    /// RHS of the pressure Poisson equation: `div(u*) / dt` on unknown
    /// cells (active, `k < nz-1`).
    fn divergence_rhs(&mut self) {
        let mesh = &self.mesh;
        let (nx, ny, nz) = (mesh.nx, mesh.ny, mesh.nz);
        let plane = nx * ny;
        let dt = self.cfg.dt;
        let (us, vs, ws) = (&self.us, &self.vs, &self.ws);
        for x in self.rhs.iter_mut() {
            *x = 0.0;
        }
        for k in 0..nz - 1 {
            for j in 0..ny {
                for i in 0..nx {
                    let idx = i + nx * j + plane * k;
                    if !mesh.active_flat(idx) {
                        continue;
                    }
                    let get = |f: &[f64], di: isize, dj: isize, dk: isize, fallback: f64| {
                        let (ii, jj, kk) = (i as isize + di, j as isize + dj, k as isize + dk);
                        if mesh.is_active(ii, jj, kk) {
                            f[(ii as usize) + nx * (jj as usize) + plane * (kk as usize)]
                        } else {
                            fallback
                        }
                    };
                    // central differences; wall neighbours contribute 0
                    // velocity, the upstream ghost repeats the inlet value
                    let dudx = (get(us, 1, 0, 0, 0.0) - get(us, -1, 0, 0, 0.0)) / 2.0;
                    let dvdy = (get(vs, 0, 1, 0, 0.0) - get(vs, 0, -1, 0, 0.0)) / 2.0;
                    let wzm = if k == 0 {
                        ws[idx]
                    } else {
                        get(ws, 0, 0, -1, 0.0)
                    };
                    let dwdz = (get(ws, 0, 0, 1, 0.0) - wzm) / 2.0;
                    self.rhs[idx] = (dudx + dvdy + dwdz) / dt;
                }
            }
        }
    }

    /// Whether a cell is a pressure unknown.
    #[inline]
    fn is_unknown(&self, i: usize, j: usize, k: usize) -> bool {
        k < self.mesh.nz - 1 && self.mesh.active_flat(self.mesh.idx(i, j, k))
    }

    /// `y = A x` where `A` is the negated mask-aware Laplacian (SPD).
    fn apply_laplacian(mesh: &TubeMesh, x: &[f64], y: &mut [f64], parallel: bool) {
        let (nx, ny, nz) = (mesh.nx, mesh.ny, mesh.nz);
        let plane = nx * ny;
        let kernel = |k: usize, y_k: &mut [f64]| {
            for j in 0..ny {
                for i in 0..nx {
                    let o = i + nx * j;
                    let idx = o + plane * k;
                    if !mesh.active_flat(idx) || k == nz - 1 {
                        y_k[o] = 0.0;
                        continue;
                    }
                    let xc = x[idx];
                    let mut acc = 0.0;
                    let mut visit = |di: isize, dj: isize, dk: isize| {
                        let (ii, jj, kk) = (i as isize + di, j as isize + dj, k as isize + dk);
                        if mesh.is_active(ii, jj, kk) {
                            let kk = kk as usize;
                            if kk == nz - 1 {
                                // Dirichlet p=0 ghost at the outlet
                                acc += xc;
                            } else {
                                let nidx = (ii as usize) + nx * (jj as usize) + plane * kk;
                                acc += xc - x[nidx];
                            }
                        }
                        // inactive / out of domain: Neumann, contributes 0
                    };
                    visit(-1, 0, 0);
                    visit(1, 0, 0);
                    visit(0, -1, 0);
                    visit(0, 1, 0);
                    visit(0, 0, -1);
                    visit(0, 0, 1);
                    y_k[o] = acc;
                }
            }
        };
        if parallel {
            y.par_chunks_mut(plane)
                .enumerate()
                .for_each(|(k, y_k)| kernel(k, y_k));
        } else {
            for (k, y_k) in y.chunks_mut(plane).enumerate() {
                kernel(k, y_k);
            }
        }
    }

    fn dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// CG on `A p = -rhs`; returns iterations used.
    fn pressure_solve(&mut self) -> usize {
        let parallel = self.cfg.parallel;
        // b = -rhs on unknowns
        let b: Vec<f64> = self.rhs.iter().map(|x| -x).collect();
        // r = b - A p  (warm start from previous pressure)
        Self::apply_laplacian(&self.mesh, &self.p, &mut self.cg_ap, parallel);
        for (i, bi) in b.iter().enumerate() {
            self.cg_r[i] = bi - self.cg_ap[i];
        }
        // mask r to unknowns (p may carry stale outlet values)
        let (nx, ny, nz) = (self.mesh.nx, self.mesh.ny, self.mesh.nz);
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    if !self.is_unknown(i, j, k) {
                        let idx = self.mesh.idx(i, j, k);
                        self.cg_r[idx] = 0.0;
                    }
                }
            }
        }
        self.cg_d.copy_from_slice(&self.cg_r);
        let bnorm = Self::dot(&b, &b).sqrt().max(1e-300);
        let mut rs = Self::dot(&self.cg_r, &self.cg_r);
        if rs.sqrt() <= self.cfg.cg_tol * bnorm {
            return 0;
        }
        for it in 1..=self.cfg.cg_max_iters {
            Self::apply_laplacian(&self.mesh, &self.cg_d, &mut self.cg_ap, parallel);
            let dad = Self::dot(&self.cg_d, &self.cg_ap);
            if dad <= 0.0 {
                return it; // numerically singular direction; accept current p
            }
            let alpha = rs / dad;
            for i in 0..self.p.len() {
                self.p[i] += alpha * self.cg_d[i];
                self.cg_r[i] -= alpha * self.cg_ap[i];
            }
            let rs_new = Self::dot(&self.cg_r, &self.cg_r);
            if rs_new.sqrt() <= self.cfg.cg_tol * bnorm {
                return it;
            }
            let beta = rs_new / rs;
            rs = rs_new;
            for i in 0..self.p.len() {
                self.cg_d[i] = self.cg_r[i] + beta * self.cg_d[i];
            }
        }
        self.cfg.cg_max_iters
    }

    /// Velocity correction `u = u* − dt ∇p` on interior active cells.
    fn correct(&mut self) {
        let mesh = &self.mesh;
        let (nx, ny, nz) = (mesh.nx, mesh.ny, mesh.nz);
        let plane = nx * ny;
        let dt = self.cfg.dt;
        let p = &self.p;
        for k in 1..nz - 1 {
            for j in 0..ny {
                for i in 0..nx {
                    let idx = i + nx * j + plane * k;
                    if !mesh.active_flat(idx) {
                        continue;
                    }
                    let pc = p[idx];
                    let get = |di: isize, dj: isize, dk: isize| -> f64 {
                        let (ii, jj, kk) = (i as isize + di, j as isize + dj, k as isize + dk);
                        if mesh.is_active(ii, jj, kk) {
                            let kk = kk as usize;
                            if kk == nz - 1 {
                                0.0 // outlet Dirichlet pressure
                            } else {
                                p[(ii as usize) + nx * (jj as usize) + plane * kk]
                            }
                        } else {
                            pc // Neumann ghost
                        }
                    };
                    self.u[idx] = self.us[idx] - dt * (get(1, 0, 0) - get(-1, 0, 0)) / 2.0;
                    self.v[idx] = self.vs[idx] - dt * (get(0, 1, 0) - get(0, -1, 0)) / 2.0;
                    self.w[idx] = self.ws[idx] - dt * (get(0, 0, 1) - get(0, 0, -1)) / 2.0;
                }
            }
        }
        self.apply_outflow_velocity();
    }

    /// Maximum |div u| over interior active cells — the projection quality.
    pub fn max_divergence(&self) -> f64 {
        let mesh = &self.mesh;
        let (nx, ny, nz) = (mesh.nx, mesh.ny, mesh.nz);
        let plane = nx * ny;
        let mut worst: f64 = 0.0;
        for k in 1..nz - 1 {
            for j in 1..ny - 1 {
                for i in 1..nx - 1 {
                    let idx = i + nx * j + plane * k;
                    if !mesh.active_flat(idx) {
                        continue;
                    }
                    let get = |f: &[f64], di: isize, dj: isize, dk: isize| -> f64 {
                        let (ii, jj, kk) = (i as isize + di, j as isize + dj, k as isize + dk);
                        if mesh.is_active(ii, jj, kk) {
                            f[(ii as usize) + nx * (jj as usize) + plane * (kk as usize)]
                        } else {
                            0.0
                        }
                    };
                    let div = (get(&self.u, 1, 0, 0) - get(&self.u, -1, 0, 0)) / 2.0
                        + (get(&self.v, 0, 1, 0) - get(&self.v, 0, -1, 0)) / 2.0
                        + (get(&self.w, 0, 0, 1) - get(&self.w, 0, 0, -1)) / 2.0;
                    worst = worst.max(div.abs());
                }
            }
        }
        worst
    }

    /// Mean axial velocity over the active cells of plane `k`.
    pub fn mean_axial_velocity(&self, k: usize) -> f64 {
        let (nx, ny) = (self.mesh.nx, self.mesh.ny);
        let mut sum = 0.0;
        let mut n = 0usize;
        for j in 0..ny {
            for i in 0..nx {
                let idx = self.mesh.idx(i, j, k);
                if self.mesh.active_flat(idx) {
                    sum += self.w[idx];
                    n += 1;
                }
            }
        }
        sum / n.max(1) as f64
    }

    /// `(r, w)` samples across plane `k` — the velocity profile.
    pub fn axial_profile(&self, k: usize) -> Vec<(f64, f64)> {
        let (nx, ny) = (self.mesh.nx, self.mesh.ny);
        let mut out = Vec::new();
        for j in 0..ny {
            for i in 0..nx {
                let idx = self.mesh.idx(i, j, k);
                if self.mesh.active_flat(idx) {
                    out.push((self.mesh.r2(i, j).sqrt(), self.w[idx]));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_case() -> CfdSolver {
        let mesh = TubeMesh::cylinder(13, 13, 24, 5.0);
        let cfg = CfdConfig::stable(&mesh, 50.0, 0.1);
        CfdSolver::new(mesh, cfg)
    }

    #[test]
    fn step_is_stable_and_counts_work() {
        let mut s = small_case();
        s.run(20);
        assert_eq!(s.stats.steps, 20);
        assert!(s.stats.cg_iters > 0);
        assert!(s.stats.flops > 1e6);
        // velocities bounded by a modest multiple of the inflow peak
        let wmax = s.w.iter().cloned().fold(0.0_f64, f64::max);
        assert!(wmax.is_finite() && wmax < 0.5, "wmax={wmax}");
    }

    #[test]
    fn projection_reduces_divergence() {
        let mut s = small_case();
        s.run(30);
        let div = s.max_divergence();
        // divergence should be tiny relative to velocity scale / h
        assert!(div < 5e-3, "div={div}");
    }

    #[test]
    fn poiseuille_profile_develops() {
        let mesh = TubeMesh::cylinder(13, 13, 40, 5.0);
        let mut cfg = CfdConfig::stable(&mesh, 20.0, 0.08);
        cfg.cg_tol = 1e-9;
        let mut s = CfdSolver::new(mesh, cfg);
        // run long enough to reach steady state
        for _ in 0..40 {
            s.run(25);
        }
        let k = s.mesh.nz / 2;
        let mean = s.mean_axial_velocity(k);
        assert!(mean > 0.01, "flow must develop, mean={mean}");
        // centreline / mean ratio: 2.0 for ideal Poiseuille; coarse grids
        // and entrance effects leave a band
        let profile = s.axial_profile(k);
        let centre = profile
            .iter()
            .filter(|(r, _)| *r < 1.0)
            .map(|(_, w)| *w)
            .fold(0.0_f64, f64::max);
        let ratio = centre / mean;
        assert!(
            (1.5..2.5).contains(&ratio),
            "centre/mean = {ratio}, centre={centre}, mean={mean}"
        );
        // profile must decrease towards the wall
        let near_wall = profile
            .iter()
            .filter(|(r, _)| *r > 4.0)
            .map(|(_, w)| *w)
            .sum::<f64>()
            / profile.iter().filter(|(r, _)| *r > 4.0).count().max(1) as f64;
        assert!(
            near_wall < 0.6 * centre,
            "near_wall={near_wall} centre={centre}"
        );
    }

    #[test]
    fn mass_conservation_along_tube() {
        let mesh = TubeMesh::cylinder(13, 13, 40, 5.0);
        let cfg = CfdConfig::stable(&mesh, 20.0, 0.08);
        let mut s = CfdSolver::new(mesh, cfg);
        for _ in 0..40 {
            s.run(25);
        }
        // steady state: flux through two interior planes must match
        let q1 = s.mean_axial_velocity(10);
        let q2 = s.mean_axial_velocity(30);
        let rel = (q1 - q2).abs() / q1.abs().max(1e-12);
        assert!(rel < 0.08, "flux drift {rel}: q1={q1} q2={q2}");
    }

    #[test]
    fn threaded_matches_serial_bitwise() {
        let mesh = TubeMesh::cylinder(11, 11, 20, 4.0);
        let mut cfg = CfdConfig::stable(&mesh, 30.0, 0.1);
        cfg.parallel = false;
        let mut serial = CfdSolver::new(mesh.clone(), cfg.clone());
        cfg.parallel = true;
        let mut par = CfdSolver::new(mesh, cfg);
        serial.run(10);
        par.run(10);
        assert_eq!(serial.w, par.w, "element-wise kernels must be exact");
        assert_eq!(serial.p, par.p);
        assert_eq!(serial.stats.cg_iters, par.stats.cg_iters);
    }

    #[test]
    fn warm_start_reduces_cg_iterations() {
        let mut s = small_case();
        s.step();
        let first = s.stats.cg_iters;
        let mut before = s.stats.cg_iters;
        let mut later = 0;
        for _ in 0..10 {
            s.step();
            later = s.stats.cg_iters - before;
            before = s.stats.cg_iters;
        }
        assert!(
            later <= first,
            "warm-started steps ({later}) should not exceed the cold start ({first})"
        );
    }

    #[test]
    fn pulsatile_inflow_oscillates_the_flux() {
        let mesh = TubeMesh::cylinder(11, 11, 20, 4.0);
        let mut cfg = CfdConfig::stable(&mesh, 30.0, 0.1);
        let period = 120.0 * cfg.dt;
        cfg.pulsatile = Some((0.5, period));
        let mut s = CfdSolver::new(mesh, cfg);
        // develop the flow, then sample the inflow-plane flux over a cycle
        s.run(240);
        let mut fluxes = Vec::new();
        for _ in 0..120 {
            s.step();
            fluxes.push(s.mean_axial_velocity(1));
        }
        let max = fluxes.iter().cloned().fold(f64::MIN, f64::max);
        let min = fluxes.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max > 1.2 * min.max(1e-9),
            "flux must oscillate over a cycle: min={min} max={max}"
        );
        assert!(fluxes.iter().all(|f| f.is_finite()));
    }

    #[test]
    fn flops_formula_matches_counters() {
        let mut s = small_case();
        s.run(5);
        let active = s.mesh.active_cells() as f64;
        let expected =
            s.stats.steps as f64 * active * (FLOPS_MOMENTUM + FLOPS_DIVERGENCE + FLOPS_CORRECTION)
                + s.stats.cg_iters as f64 * active * FLOPS_CG_ITER;
        let rel = (s.stats.flops - expected).abs() / expected;
        assert!(rel < 1e-12, "rel={rel}");
    }
}
