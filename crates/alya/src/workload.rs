//! Workload models: the two Alya use cases as [`JobProfile`] generators.
//!
//! Each model describes, for a given MPI rank count, what one timestep
//! costs (flops per rank, from the instrumented solver constants of
//! [`crate::cfd`]) and which communication phases it runs (halo bytes from
//! the partition's surface-to-volume ratio, CG dot-product allreduces,
//! coupling pair traffic). The *case presets* carry the mesh sizes and
//! step counts calibrated for each figure of the paper; see DESIGN.md §4.

use crate::cfd::{FLOPS_CG_ITER, FLOPS_CORRECTION, FLOPS_DIVERGENCE, FLOPS_MOMENTUM};
use harborsim_mpi::workload::{factor3, CommPhase, JobProfile, StepProfile};

/// A runnable Alya case: something that can describe itself to the engines.
pub trait AlyaCase {
    /// Case name for reports.
    fn name(&self) -> &str;
    /// The job profile at `ranks` MPI ranks.
    fn job_profile(&self, ranks: u32) -> JobProfile;
    /// A string uniquely identifying every parameter that influences
    /// [`AlyaCase::job_profile`], enabling the process-wide cache in
    /// [`crate::memo`]. The default (`None`) opts out of caching; cases
    /// that opt in must include *all* profile-relevant state (floats by
    /// bit pattern) or the cache will serve stale profiles.
    fn memo_key(&self) -> Option<String> {
        None
    }
}

/// Surface cells of a near-cubic subdomain of `cells` cells.
fn surface_cells(cells: f64) -> f64 {
    cells.max(1.0).powf(2.0 / 3.0)
}

/// The CFD artery case: single-physics Navier–Stokes.
#[derive(Debug, Clone, PartialEq)]
pub struct ArteryCfd {
    /// Case label.
    pub label: String,
    /// Active (fluid) mesh cells.
    pub active_cells: f64,
    /// Timesteps in the case.
    pub timesteps: u32,
    /// Mean CG iterations per pressure solve.
    pub cg_iters: u32,
}

impl ArteryCfd {
    /// A toy case for tests and the quickstart example.
    pub fn small() -> ArteryCfd {
        ArteryCfd {
            label: "artery-cfd-small".into(),
            active_cells: 5.0e4,
            timesteps: 5,
            cg_iters: 15,
        }
    }

    /// The Fig. 1 case: sized so the bare-metal run takes minutes on the
    /// 112 Haswell cores of Lenox.
    pub fn lenox_case() -> ArteryCfd {
        ArteryCfd {
            label: "artery-cfd-lenox".into(),
            active_cells: 20.0e6,
            timesteps: 300,
            cg_iters: 35,
        }
    }

    /// The Fig. 2 case on CTE-POWER (same mesh, longer run — the paper
    /// reports 2-node times near 90 s).
    pub fn cte_power_case() -> ArteryCfd {
        ArteryCfd {
            label: "artery-cfd-cte".into(),
            active_cells: 20.0e6,
            timesteps: 500,
            cg_iters: 35,
        }
    }

    /// Flops per active cell per timestep, from the instrumented solver.
    pub fn flops_per_cell_step(&self) -> f64 {
        FLOPS_MOMENTUM + FLOPS_DIVERGENCE + FLOPS_CORRECTION + self.cg_iters as f64 * FLOPS_CG_ITER
    }
}

impl AlyaCase for ArteryCfd {
    fn name(&self) -> &str {
        &self.label
    }

    fn memo_key(&self) -> Option<String> {
        Some(format!(
            "cfd:{}:{:x}:{}:{}",
            self.label,
            self.active_cells.to_bits(),
            self.timesteps,
            self.cg_iters
        ))
    }

    fn job_profile(&self, ranks: u32) -> JobProfile {
        assert!(ranks >= 1);
        let dims = factor3(ranks);
        let cells_per_rank = self.active_cells / ranks as f64;
        let halo_bytes = (surface_cells(cells_per_rank) * 8.0) as u64;
        let cg = self.cg_iters;
        let step = StepProfile {
            flops_per_rank: cells_per_rank * self.flops_per_cell_step(),
            imbalance: 1.04, // mask-induced partition imbalance
            regions: (6 + 2 * cg) as f64,
            comm: vec![
                // momentum + tentative-velocity halos: 3 fields each
                CommPhase::Halo3D {
                    dims,
                    bytes: halo_bytes * 3,
                    repeats: 2,
                },
                // CG pressure halos: warm start + one per iteration + final
                CommPhase::Halo3D {
                    dims,
                    bytes: halo_bytes,
                    repeats: cg + 2,
                },
                // CG dot products + residual norms
                CommPhase::Allreduce {
                    bytes: 8,
                    repeats: 2 * cg + 2,
                },
                // residual monitoring at rank 0
                CommPhase::Gather { bytes_per_rank: 16 },
            ],
        };
        JobProfile::uniform(step, self.timesteps)
    }
}

/// The FSI artery case: fluid + wall codes, partitioned coupling.
#[derive(Debug, Clone, PartialEq)]
pub struct ArteryFsi {
    /// Case label.
    pub label: String,
    /// Active fluid cells.
    pub active_cells: f64,
    /// Timesteps.
    pub timesteps: u32,
    /// CG iterations per fluid solve.
    pub cg_iters: u32,
    /// Fraction of ranks running the solid code.
    pub solid_fraction: f64,
    /// Interface payload per fluid↔solid pair per coupling exchange.
    pub interface_bytes: u64,
}

impl ArteryFsi {
    /// A toy FSI case for tests and examples.
    pub fn small() -> ArteryFsi {
        ArteryFsi {
            label: "artery-fsi-small".into(),
            active_cells: 1.0e5,
            timesteps: 5,
            cg_iters: 15,
            solid_fraction: 0.25,
            interface_bytes: 4096,
        }
    }

    /// The Fig. 3 case: sized for strong scaling from 4 to 256 MareNostrum4
    /// nodes (192 → 12,288 cores).
    pub fn mn4_case() -> ArteryFsi {
        ArteryFsi {
            label: "artery-fsi-mn4".into(),
            active_cells: 260.0e6,
            timesteps: 90,
            cg_iters: 30,
            solid_fraction: 0.08,
            interface_bytes: 96 * 1024,
        }
    }

    /// How many ranks run the solid code at a given total.
    pub fn solid_ranks(&self, ranks: u32) -> u32 {
        if ranks < 4 {
            return 0;
        }
        ((ranks as f64 * self.solid_fraction) as u32).clamp(1, ranks / 2)
    }

    /// Fluid↔solid coupling pairs: each solid rank is paired with a fluid
    /// rank spread evenly across the fluid range.
    pub fn coupling_pairs(&self, ranks: u32) -> Vec<(u32, u32)> {
        let solid = self.solid_ranks(ranks);
        if solid == 0 {
            return Vec::new();
        }
        let fluid = ranks - solid;
        (0..solid)
            .map(|i| {
                let partner = (i as u64 * fluid as u64 / solid as u64) as u32;
                (partner, fluid + i)
            })
            .collect()
    }
}

impl AlyaCase for ArteryFsi {
    fn name(&self) -> &str {
        &self.label
    }

    fn memo_key(&self) -> Option<String> {
        Some(format!(
            "fsi:{}:{:x}:{}:{}:{:x}:{}",
            self.label,
            self.active_cells.to_bits(),
            self.timesteps,
            self.cg_iters,
            self.solid_fraction.to_bits(),
            self.interface_bytes
        ))
    }

    fn job_profile(&self, ranks: u32) -> JobProfile {
        assert!(ranks >= 1);
        let solid = self.solid_ranks(ranks);
        let fluid = (ranks - solid).max(1);
        let dims = factor3(ranks);
        let cells_per_fluid_rank = self.active_cells / fluid as f64;
        let halo_bytes = (surface_cells(cells_per_fluid_rank) * 8.0) as u64;
        let cg = self.cg_iters;
        let flops_per_cell =
            FLOPS_MOMENTUM + FLOPS_DIVERGENCE + FLOPS_CORRECTION + cg as f64 * FLOPS_CG_ITER;
        // mean over all ranks; solid work is negligible, so the max/mean
        // imbalance is the fluid/mean ratio
        let total_flops = self.active_cells * flops_per_cell;
        let mean_flops = total_flops / ranks as f64;
        let imbalance = (ranks as f64 / fluid as f64).max(1.0) * 1.04;
        let step = StepProfile {
            flops_per_rank: mean_flops,
            imbalance,
            regions: (8 + 2 * cg) as f64,
            comm: vec![
                // fluid halos: momentum + CG
                CommPhase::Halo3D {
                    dims,
                    bytes: halo_bytes * 3,
                    repeats: 2,
                },
                CommPhase::Halo3D {
                    dims,
                    bytes: halo_bytes,
                    repeats: cg + 2,
                },
                // CG dots + coupling-residual norms
                CommPhase::Allreduce {
                    bytes: 8,
                    repeats: 2 * cg + 4,
                },
                // coupling: pressures out, areas back (two exchanges)
                CommPhase::Pairs {
                    pairs: self.coupling_pairs(ranks),
                    bytes: self.interface_bytes,
                },
                CommPhase::Pairs {
                    pairs: self.coupling_pairs(ranks),
                    bytes: self.interface_bytes,
                },
                // witness-point gather
                CommPhase::Gather { bytes_per_rank: 32 },
            ],
        };
        JobProfile::uniform(step, self.timesteps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfd_total_flops_independent_of_ranks() {
        let case = ArteryCfd::lenox_case();
        let f8 = case.job_profile(8).total_flops(8);
        let f112 = case.job_profile(112).total_flops(112);
        let rel = (f8 - f112).abs() / f8;
        assert!(rel < 1e-9, "rel={rel}");
    }

    #[test]
    fn cfd_halo_bytes_shrink_with_ranks() {
        let case = ArteryCfd::lenox_case();
        let bytes = |ranks: u32| match &case.job_profile(ranks).steps[0].0.comm[1] {
            CommPhase::Halo3D { bytes, .. } => *bytes,
            _ => panic!("expected halo"),
        };
        assert!(bytes(8) > bytes(28));
        assert!(bytes(28) > bytes(112));
    }

    #[test]
    fn cfd_flops_match_solver_constants() {
        let case = ArteryCfd::small();
        // FLOPS_* constants are validated against the real solver's
        // counters in cfd.rs; here we pin the composition
        let expected = 117.0 + 12.0 + 18.0 + 15.0 * 27.0;
        assert_eq!(case.flops_per_cell_step(), expected);
    }

    #[test]
    fn cfd_profile_structure() {
        let job = ArteryCfd::small().job_profile(8);
        assert_eq!(job.total_steps(), 5);
        let step = &job.steps[0].0;
        assert_eq!(step.comm.len(), 4);
        assert!(step.messages_per_rank(8) > 0);
    }

    #[test]
    fn fsi_solid_rank_allocation() {
        let case = ArteryFsi::mn4_case();
        assert_eq!(case.solid_ranks(2), 0, "tiny jobs run fluid only");
        assert_eq!(case.solid_ranks(192), 15);
        assert_eq!(case.solid_ranks(12_288), 983);
        // pairs reference valid ranks and are unique per solid rank
        for ranks in [192u32, 768, 12_288] {
            let pairs = case.coupling_pairs(ranks);
            assert_eq!(pairs.len() as u32, case.solid_ranks(ranks));
            for &(f, s) in &pairs {
                assert!(f < ranks - case.solid_ranks(ranks), "fluid partner {f}");
                assert!(s >= ranks - case.solid_ranks(ranks) && s < ranks);
            }
        }
    }

    #[test]
    fn fsi_imbalance_reflects_solid_idleness() {
        let case = ArteryFsi::mn4_case();
        let step = &case.job_profile(192).steps[0].0;
        assert!(step.imbalance > 1.05, "imbalance={}", step.imbalance);
        assert!(step.imbalance < 1.30);
    }

    #[test]
    fn small_cases_are_cheap() {
        let cfd = ArteryCfd::small().job_profile(4);
        assert!(cfd.total_flops(4) < 1e10);
        let fsi = ArteryFsi::small().job_profile(4);
        assert!(fsi.total_flops(4) < 1e10);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ArteryCfd::lenox_case().name(), "artery-cfd-lenox");
        assert_eq!(ArteryFsi::mn4_case().name(), "artery-fsi-mn4");
    }
}
