//! # harborsim-alya
//!
//! Mini-Alya: numerically honest miniatures of the two biological use cases
//! the paper runs on Alya, plus the workload models that describe their
//! computation/communication footprint to the HarborSim performance engines.
//!
//! - [`mesh`] — the artery geometry: a cylinder masked out of a Cartesian
//!   grid.
//! - [`cfd`] — the **CFD artery case**: 3D incompressible Navier–Stokes
//!   (fractional-step/Chorin projection, upwind advection, conjugate-
//!   gradient pressure solve), validated against Poiseuille flow. Runs
//!   sequentially, with Rayon shared-memory parallelism, or slab-decomposed
//!   over the functional thread MPI.
//! - [`pulse1d`] — the 1D arterial pulse-wave fluid solver (area/flow
//!   formulation with an elastic tube law) used by the FSI pair.
//! - [`wall`] — the wall-mechanics "solid code": a viscoelastic radial
//!   displacement model per axial station.
//! - [`fsi`] — the **FSI artery case**: partitioned coupling of the 1D
//!   fluid code and the wall code with sub-iterations and relaxation —
//!   "two instances of different codes", as the paper describes it.
//! - [`fsi_dist`] — the same coupled pair over the functional thread MPI:
//!   fluid and solid on disjoint rank groups exchanging interface data,
//!   validated against the sequential coupling.
//! - [`workload`] — [`harborsim_mpi::JobProfile`] generators for both use
//!   cases at any scale, with flop and byte counts derived from the
//!   instrumented solvers above.

pub mod cfd;
pub mod dist;
pub mod fsi;
pub mod fsi_dist;
pub mod memo;
pub mod mesh;
pub mod pulse1d;
pub mod wall;
pub mod workload;

pub use cfd::{CfdConfig, CfdSolver};
pub use fsi::{CoupledFsi, FsiConfig};
pub use mesh::TubeMesh;
pub use workload::{ArteryCfd, ArteryFsi};
