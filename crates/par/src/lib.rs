//! # harborsim-par
//!
//! Minimal data-parallel iterators over [`std::thread::scope`], covering
//! exactly the surface HarborSim uses: order-preserving `map().collect()`
//! over slices and vectors, and mutable chunk iteration for the solver
//! kernels (`par_chunks_mut` + `zip`/`enumerate`/`filter`/`for_each`).
//!
//! Execution is a **work-stealing pool**: every worker owns a deque
//! seeded with a contiguous block of item indices, pops its own work from
//! the back, and — once drained — steals from the *front* of its
//! neighbours. Scenario sweeps are skewed (a 256-node plan costs orders
//! of magnitude more than a 2-node plan), and the old one-fixed-chunk-
//! per-core split left most cores idle behind whichever chunk drew the
//! big points; stealing keeps them busy without giving up order: results
//! carry their index and are reassembled in input order at the end.
//! Every adapter is eager, so the item list is materialized before the
//! parallel stage runs; the implementation stays dependency-free and
//! deterministic in output order. The old fixed-chunk strategy survives
//! as [`run_chunked`] — the baseline the `engine_micro` bench compares
//! against.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Everything call sites need: the three extension traits.
pub mod prelude {
    pub use crate::{IntoParIter, ParChunksMutExt, ParIterExt};
}

fn worker_count(items: usize) -> usize {
    if items <= 1 {
        return 1;
    }
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(items)
}

/// Apply `f` to every item in parallel on the work-stealing pool,
/// returning results in input order.
pub fn run<I, U, F>(items: Vec<I>, f: F) -> Vec<U>
where
    I: Send,
    U: Send,
    F: Fn(I) -> U + Sync,
{
    let n = items.len();
    let workers = worker_count(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Items live in index-addressed slots so a worker holding only a
    // shared reference can move one out once it has claimed the index.
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    // Per-worker deques, block-seeded: worker w starts with a contiguous
    // index range, so the no-contention fast path preserves the locality
    // of the old fixed-chunk split.
    let per = n.div_ceil(workers);
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w * per..((w + 1) * per).min(n)).collect()))
        .collect();
    // Unclaimed-item count: workers exit once every index is claimed,
    // even while the final items are still executing elsewhere.
    let unclaimed = AtomicUsize::new(n);
    let (slots, deques, unclaimed, f) = (&slots, &deques, &unclaimed, &f);
    let mut results: Vec<Option<U>> = (0..n).map(|_| None).collect();
    thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut done: Vec<(usize, U)> = Vec::new();
                    loop {
                        // Own deque first (pop back: LIFO keeps the block
                        // warm), then steal from the front of the others
                        // (FIFO: take the victim's coldest work).
                        let idx = deques[w].lock().unwrap().pop_back().or_else(|| {
                            (1..workers)
                                .find_map(|d| deques[(w + d) % workers].lock().unwrap().pop_front())
                        });
                        match idx {
                            Some(i) => {
                                unclaimed.fetch_sub(1, Ordering::AcqRel);
                                let item = slots[i]
                                    .lock()
                                    .unwrap()
                                    .take()
                                    .expect("index dequeued twice");
                                done.push((i, f(item)));
                            }
                            None if unclaimed.load(Ordering::Acquire) == 0 => break,
                            // Queues momentarily empty mid-claim: let the
                            // claimant finish its pop before re-scanning.
                            None => thread::yield_now(),
                        }
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            for (i, u) in h.join().expect("parallel worker panicked") {
                results[i] = Some(u);
            }
        }
    });
    results
        .into_iter()
        .map(|u| u.expect("every index executes exactly once"))
        .collect()
}

/// Run every item on its own dedicated OS thread, returning results in
/// input order.
///
/// Unlike [`run`], which multiplexes items over at most one worker per
/// core, `gang` guarantees one thread per item — the contract tasks that
/// *synchronize with each other* need. The sharded DES driver blocks its
/// shard tasks on window barriers: under [`run`] on a small machine two
/// shards can land on one worker, and the first would park at a barrier
/// the second (never started) can never reach. Gangs are expected to be
/// small — one item per shard, not one per work unit. With fewer cores
/// than items the threads time-slice; that is slower but correct as long
/// as the tasks' synchronization spins politely (yields).
pub fn gang<I, U, F>(items: Vec<I>, f: F) -> Vec<U>
where
    I: Send,
    U: Send,
    F: Fn(I) -> U + Sync,
{
    if items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let f = &f;
    thread::scope(|scope| {
        let handles: Vec<_> = items
            .into_iter()
            .map(|item| scope.spawn(move || f(item)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("gang worker panicked"))
            .collect()
    })
}

/// The pre-stealing strategy: split items into one contiguous fixed chunk
/// per core, one thread per chunk, no load balancing. Kept as the
/// benchmark baseline for the work-stealing pool (see the `engine_micro`
/// bench's skewed-workload comparison); sweeps should use [`run`].
pub fn run_chunked<I, U, F>(items: Vec<I>, f: F) -> Vec<U>
where
    I: Send,
    U: Send,
    F: Fn(I) -> U + Sync,
{
    let workers = worker_count(items.len());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let per = items.len().div_ceil(workers);
    let mut batches: Vec<Vec<I>> = Vec::with_capacity(workers);
    let mut it = items.into_iter();
    loop {
        let batch: Vec<I> = it.by_ref().take(per).collect();
        if batch.is_empty() {
            break;
        }
        batches.push(batch);
    }
    let f = &f;
    thread::scope(|scope| {
        let handles: Vec<_> = batches
            .into_iter()
            .map(|batch| scope.spawn(move || batch.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// An eager parallel iterator: adapters restructure the item list, the
/// terminal `for_each`/`map().collect()` runs it across threads.
pub struct ParItems<I> {
    items: Vec<I>,
}

impl<I: Send> ParItems<I> {
    /// Pair items positionally with another parallel iterator (truncates
    /// to the shorter side, like [`Iterator::zip`]).
    pub fn zip<J: Send>(self, other: ParItems<J>) -> ParItems<(I, J)> {
        ParItems {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Attach each item's index.
    pub fn enumerate(self) -> ParItems<(usize, I)> {
        ParItems {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Keep only items matching `pred`.
    pub fn filter<P: FnMut(&I) -> bool>(self, pred: P) -> ParItems<I> {
        ParItems {
            items: self.items.into_iter().filter(pred).collect(),
        }
    }

    /// Defer `f` to the parallel stage; finish with [`ParMap::collect`].
    pub fn map<U, F>(self, f: F) -> ParMap<I, F>
    where
        F: Fn(I) -> U + Sync,
        U: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` on every item in parallel.
    pub fn for_each<F: Fn(I) + Sync>(self, f: F) {
        run(self.items, f);
    }
}

/// A pending parallel map; [`ParMap::collect`] executes it.
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I: Send, F> ParMap<I, F> {
    /// Execute the map across threads and collect in input order.
    pub fn collect<U, B>(self) -> B
    where
        F: Fn(I) -> U + Sync,
        U: Send,
        B: FromIterator<U>,
    {
        run(self.items, self.f).into_iter().collect()
    }
}

/// `par_iter()` over shared slices (and anything that derefs to one).
pub trait ParIterExt<T> {
    /// Parallel iterator of `&T` in slice order.
    fn par_iter(&self) -> ParItems<&T>;
}

impl<T: Sync> ParIterExt<T> for [T] {
    fn par_iter(&self) -> ParItems<&T> {
        ParItems {
            items: self.iter().collect(),
        }
    }
}

/// `into_par_iter()` over owned collections.
pub trait IntoParIter {
    /// Item type handed to the parallel stage.
    type Item: Send;
    /// Consume `self` into a parallel iterator.
    fn into_par_iter(self) -> ParItems<Self::Item>;
}

impl<T: Send> IntoParIter for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParItems<T> {
        ParItems { items: self }
    }
}

/// `par_chunks_mut()` over mutable slices: disjoint windows that threads
/// may write concurrently.
pub trait ParChunksMutExt<T> {
    /// Parallel iterator of `&mut [T]` chunks of at most `size` elements.
    fn par_chunks_mut(&mut self, size: usize) -> ParItems<&mut [T]>;
}

impl<T: Send> ParChunksMutExt<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParItems<&mut [T]> {
        ParItems {
            items: self.chunks_mut(size).collect(),
        }
    }
}

/// A resident pool of worker threads consuming boxed jobs from one
/// shared queue — the long-lived sibling of the scoped [`run`] pool,
/// for servers whose work arrives over time (the lab daemon's
/// connection handlers) instead of as one materialized batch.
///
/// Jobs are `FnOnce() + Send + 'static` closures; submission never
/// blocks (the queue is unbounded — admission control belongs to the
/// caller, e.g. a bounded listener backlog). Dropping the pool closes
/// the queue, lets every queued job finish, and joins the workers.
pub struct WorkerPool {
    tx: Option<std::sync::mpsc::Sender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
}

type Job = Box<dyn FnOnce() + Send + 'static>;

impl WorkerPool {
    /// A pool of exactly `workers` resident threads (min 1).
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let (tx, rx) = std::sync::mpsc::channel::<Job>();
        let rx = std::sync::Arc::new(Mutex::new(rx));
        let workers = (0..workers)
            .map(|_| {
                let rx = std::sync::Arc::clone(&rx);
                thread::spawn(move || loop {
                    // hold the lock only to receive: jobs run unlocked
                    let job = match rx.lock().unwrap().recv() {
                        Ok(job) => job,
                        Err(_) => return, // queue closed: drain done
                    };
                    job();
                })
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Number of resident worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueue one job; some idle worker will run it.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool queue lives as long as the pool")
            .send(Box::new(job))
            .expect("workers outlive the queue");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.tx.take()); // close the queue: workers drain and exit
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(ys, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_owned() {
        let xs: Vec<String> = (0..64).map(|i| format!("item-{i}")).collect();
        let lens: Vec<usize> = xs.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens.len(), 64);
        assert_eq!(lens[0], 6);
        assert_eq!(lens[10], 7);
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<i32> = Vec::<i32>::new().into_par_iter().map(|x| x).collect();
        assert!(none.is_empty());
        let one: Vec<i32> = vec![7].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn chunks_zip_enumerate_filter_matches_serial() {
        let plane = 16;
        let planes = 9;
        let mut a = vec![0.0_f64; plane * planes];
        let mut b = vec![0.0_f64; plane * planes];
        a.par_chunks_mut(plane)
            .zip(b.par_chunks_mut(plane))
            .enumerate()
            .filter(|(k, _)| *k >= 1 && *k < planes - 1)
            .for_each(|(k, (a_k, b_k))| {
                for (o, (x, y)) in a_k.iter_mut().zip(b_k.iter_mut()).enumerate() {
                    *x = (k * plane + o) as f64;
                    *y = -*x;
                }
            });
        // boundary planes untouched
        assert!(a[..plane].iter().all(|&x| x == 0.0));
        assert!(a[plane * (planes - 1)..].iter().all(|&x| x == 0.0));
        // interior written
        assert_eq!(a[plane + 3], (plane + 3) as f64);
        assert_eq!(b[plane + 3], -((plane + 3) as f64));
    }

    #[test]
    fn skewed_workload_preserves_order() {
        // One item orders of magnitude heavier than the rest — the shape
        // that starves a fixed-chunk split. Output order must still be
        // input order, every item exactly once.
        let xs: Vec<u64> = (0..257).collect();
        let ys: Vec<u64> = run(xs, |x| {
            let spins = if x == 0 { 200_000 } else { 50 };
            let mut acc = x;
            for i in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(acc);
            x * 3
        });
        assert_eq!(ys, (0..257).map(|x| x * 3).collect::<Vec<u64>>());
    }

    #[test]
    fn stealing_and_chunked_agree() {
        let xs: Vec<u64> = (0..1000).collect();
        let a = run(xs.clone(), |x| x * x + 1);
        let b = run_chunked(xs, |x| x * x + 1);
        assert_eq!(a, b);
    }

    #[test]
    fn gang_runs_mutually_blocking_tasks() {
        // Tasks that rendezvous at a barrier: correct only if every task
        // gets its own thread (run() would serialize them onto the
        // available workers and deadlock). Must hold on any core count.
        use std::sync::atomic::AtomicUsize;
        const N: usize = 4;
        let arrived = AtomicUsize::new(0);
        let arrived = &arrived;
        let out = gang((0..N).collect(), |i| {
            arrived.fetch_add(1, Ordering::AcqRel);
            while arrived.load(Ordering::Acquire) < N {
                thread::yield_now();
            }
            i * 10
        });
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn for_each_visits_every_item_once() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let hits = AtomicU64::new(0);
        let xs: Vec<u64> = (1..=100).collect();
        xs.into_par_iter().for_each(|x| {
            hits.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn worker_pool_runs_every_submitted_job() {
        use std::sync::atomic::AtomicU64;
        use std::sync::Arc;
        let pool = WorkerPool::new(3);
        assert_eq!(pool.workers(), 3);
        let sum = Arc::new(AtomicU64::new(0));
        for x in 1..=100u64 {
            let sum = Arc::clone(&sum);
            pool.submit(move || {
                sum.fetch_add(x, Ordering::Relaxed);
            });
        }
        drop(pool); // joins: every queued job has run
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn worker_pool_clamps_to_one_worker() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        let (tx, rx) = std::sync::mpsc::channel();
        pool.submit(move || tx.send(42u8).unwrap());
        assert_eq!(rx.recv().unwrap(), 42);
    }
}
