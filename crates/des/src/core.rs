//! The per-shard event core: slab + keyed 4-ary heap + clock.
//!
//! [`EventCore`] is the piece of the monolithic [`Engine`](crate::Engine)
//! that a parallel discrete-event simulation needs *per shard*: an event
//! arena, a min-heap, and a local clock — without the boxed-closure API,
//! cancellation handles, or a run loop. The caller owns the loop, which is
//! what conservative synchronization needs: each shard pops only events
//! inside the current safe horizon via [`EventCore::pop_within`] and parks
//! at a barrier until a new horizon is agreed.
//!
//! Ordering is by a caller-packed key, not an engine-local sequence
//! number: `(time, tie)` with the tie-breaker carrying a layout-invariant
//! `(source domain, per-domain sequence)` pair. Because the key is a pure
//! function of *which domain scheduled the event and in what order*, the
//! global pop order of the union of all shards' cores is identical for
//! every shard count — the property the serial-vs-sharded differential
//! test pins.

use crate::arena::EventArena;
use crate::heap::EventHeap;
use crate::time::SimTime;

/// One shard's pending-event set and clock.
///
/// Events are plain values (`E`); scheduling stores them in a slab and
/// orders bare slot indices, so the hot loop never moves payloads.
#[derive(Debug)]
pub struct EventCore<E> {
    now: SimTime,
    heap: EventHeap,
    arena: EventArena<E>,
}

impl<E> Default for EventCore<E> {
    fn default() -> Self {
        EventCore::new()
    }
}

impl<E> EventCore<E> {
    /// An empty core at time zero.
    pub fn new() -> Self {
        EventCore {
            now: SimTime::ZERO,
            heap: EventHeap::new(),
            arena: EventArena::new(),
        }
    }

    /// Current shard-local simulation time: the timestamp of the last
    /// event popped (zero before the first pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.len() == 0
    }

    /// Schedule `ev` at absolute time `at`, tie-broken by `tie` (smaller
    /// fires first among equal times). Coexisting `(at, tie)` pairs must
    /// be distinct; the sharded engine guarantees this by packing
    /// `(domain, per-domain sequence)` into the tie.
    #[inline]
    pub fn schedule_keyed(&mut self, at: SimTime, tie: u64, ev: E) {
        debug_assert!(at >= self.now, "event scheduled in the past");
        let (slot, _gen) = self.arena.insert(ev);
        let key = ((at.0 as u128) << 64) | tie as u128;
        self.heap.push_keyed(key, slot);
    }

    /// Timestamp of the earliest pending event, if any.
    #[inline]
    pub fn min_time(&self) -> Option<SimTime> {
        self.heap.peek_time()
    }

    /// Pop the earliest event if it fires at or before `horizon`,
    /// advancing the clock to its timestamp. `None` means the next event
    /// (if any) lies beyond the horizon — the shard must re-synchronize
    /// before it may process further.
    #[inline]
    pub fn pop_within(&mut self, horizon: SimTime) -> Option<E> {
        let (at, slot) = self.heap.pop_within(horizon)?;
        let ev = self.arena.take(slot).expect("keyed event slot is live");
        self.now = at;
        Some(ev)
    }

    /// Drop all pending events and rewind the clock, keeping allocations
    /// (shard reuse across runs).
    pub fn reset(&mut self) {
        self.now = SimTime::ZERO;
        self.heap.clear();
        self.arena.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_tie_order() {
        let mut c: EventCore<u32> = EventCore::new();
        c.schedule_keyed(SimTime(20), 1, 0);
        c.schedule_keyed(SimTime(10), 9, 1);
        c.schedule_keyed(SimTime(10), 2, 2);
        c.schedule_keyed(SimTime(30), 0, 3);
        let mut got = Vec::new();
        while let Some(ev) = c.pop_within(SimTime::MAX) {
            got.push((c.now().0, ev));
        }
        assert_eq!(got, vec![(10, 2), (10, 1), (20, 0), (30, 3)]);
    }

    #[test]
    fn horizon_blocks_later_events() {
        let mut c: EventCore<&'static str> = EventCore::new();
        c.schedule_keyed(SimTime(5), 0, "early");
        c.schedule_keyed(SimTime(50), 0, "late");
        assert_eq!(c.pop_within(SimTime(10)), Some("early"));
        assert_eq!(c.pop_within(SimTime(10)), None);
        assert_eq!(c.now(), SimTime(5), "a refused pop must not advance time");
        assert_eq!(c.min_time(), Some(SimTime(50)));
        assert_eq!(c.pop_within(SimTime(50)), Some("late"));
        assert!(c.is_empty());
    }

    #[test]
    fn reset_rewinds_and_clears() {
        let mut c: EventCore<u8> = EventCore::new();
        c.schedule_keyed(SimTime(7), 0, 1);
        assert_eq!(c.pop_within(SimTime::MAX), Some(1));
        c.schedule_keyed(SimTime(9), 0, 2);
        c.reset();
        assert!(c.is_empty());
        assert_eq!(c.now(), SimTime::ZERO);
        assert_eq!(c.min_time(), None);
        c.schedule_keyed(SimTime(1), 0, 3);
        assert_eq!(c.pop_within(SimTime::MAX), Some(3));
    }
}
