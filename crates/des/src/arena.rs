//! A slab arena for pending events.
//!
//! Every scheduled event lives in a slot of this arena until it fires or is
//! cancelled; the heap orders bare slot indices, so the hot loop never moves
//! payloads around. Slots carry a generation counter: an
//! [`EventId`](crate::engine::EventId) is `(slot, generation)`, cancellation
//! is an O(1) generation bump that empties the payload in place, and a stale
//! handle (the event already fired, or the slot was recycled) simply fails
//! the generation check. Cancelled slots are *lazily* freed — the heap entry
//! still points at them, so they rejoin the free list only when that entry
//! pops as a tombstone. Free slots form an intrusive list through
//! `next_free`, so steady-state schedule/pop churn reuses storage instead of
//! allocating.

#[derive(Debug)]
struct Slot<E> {
    generation: u32,
    next_free: u32,
    payload: Option<E>,
}

const NIL: u32 = u32::MAX;

#[derive(Debug)]
pub(crate) struct EventArena<E> {
    slots: Vec<Slot<E>>,
    free_head: u32,
}

impl<E> Default for EventArena<E> {
    fn default() -> Self {
        EventArena {
            slots: Vec::new(),
            free_head: NIL,
        }
    }
}

impl<E> EventArena<E> {
    pub(crate) fn new() -> Self {
        EventArena::default()
    }

    pub(crate) fn with_capacity(n: usize) -> Self {
        EventArena {
            slots: Vec::with_capacity(n),
            free_head: NIL,
        }
    }

    /// Store `payload`, returning `(slot, generation)`.
    #[inline]
    pub(crate) fn insert(&mut self, payload: E) -> (u32, u32) {
        if self.free_head != NIL {
            let slot = self.free_head;
            let s = &mut self.slots[slot as usize];
            debug_assert!(s.payload.is_none(), "free slot holds a payload");
            self.free_head = s.next_free;
            s.payload = Some(payload);
            (slot, s.generation)
        } else {
            let slot = u32::try_from(self.slots.len()).expect("event arena overflow");
            self.slots.push(Slot {
                generation: 0,
                next_free: NIL,
                payload: Some(payload),
            });
            (slot, 0)
        }
    }

    /// Remove and return the payload as its heap entry pops, freeing the
    /// slot. `None` means the entry was a cancelled tombstone.
    pub(crate) fn take(&mut self, slot: u32) -> Option<E> {
        let s = &mut self.slots[slot as usize];
        let payload = s.payload.take();
        // Invalidate outstanding handles (cancel-after-fire is a no-op) and
        // recycle the slot.
        s.generation = s.generation.wrapping_add(1);
        s.next_free = self.free_head;
        self.free_head = slot;
        payload
    }

    /// Cancel the event in `slot` if `generation` still matches. The slot
    /// stays out of the free list until its heap entry pops.
    #[inline]
    pub(crate) fn cancel(&mut self, slot: u32, generation: u32) {
        if let Some(s) = self.slots.get_mut(slot as usize) {
            if s.generation == generation && s.payload.is_some() {
                s.payload = None;
                s.generation = s.generation.wrapping_add(1);
            }
        }
    }

    /// Drop all payloads and rebuild the free list, keeping the slot
    /// storage (engine reuse). Generations advance so pre-reset handles
    /// cannot alias post-reset events.
    pub(crate) fn clear(&mut self) {
        self.free_head = NIL;
        for (i, s) in self.slots.iter_mut().enumerate().rev() {
            if s.payload.take().is_some() {
                s.generation = s.generation.wrapping_add(1);
            }
            s.next_free = self.free_head;
            self.free_head = i as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_reused_after_take() {
        let mut a: EventArena<u32> = EventArena::new();
        let (s0, g0) = a.insert(10);
        assert_eq!(a.take(s0), Some(10));
        let (s1, g1) = a.insert(20);
        assert_eq!(s1, s0, "freed slot must be reused");
        assert_ne!(g1, g0, "reuse must advance the generation");
    }

    #[test]
    fn cancel_with_stale_generation_is_noop() {
        let mut a: EventArena<u32> = EventArena::new();
        let (s, g) = a.insert(1);
        assert_eq!(a.take(s), Some(1));
        let (s2, _) = a.insert(2);
        assert_eq!(s2, s);
        a.cancel(s, g); // stale handle from the first event
        assert_eq!(
            a.take(s),
            Some(2),
            "stale cancel must not hit the new event"
        );
    }

    #[test]
    fn cancelled_slot_freed_only_on_take() {
        let mut a: EventArena<u32> = EventArena::new();
        let (s, g) = a.insert(1);
        a.cancel(s, g);
        // not yet free: a new insert must take a fresh slot
        let (s2, _) = a.insert(2);
        assert_ne!(s2, s);
        assert_eq!(a.take(s), None, "tombstone pop yields no payload");
        let (s3, _) = a.insert(3);
        assert_eq!(s3, s, "slot rejoins the free list after the tombstone pop");
    }

    #[test]
    fn clear_keeps_capacity_and_invalidates_handles() {
        let mut a: EventArena<u32> = EventArena::new();
        let ids: Vec<_> = (0..8).map(|i| a.insert(i)).collect();
        a.clear();
        for (s, g) in ids {
            a.cancel(s, g); // all stale now
        }
        let (s, _) = a.insert(99);
        assert_eq!(a.take(s), Some(99));
    }
}
