//! Timeline recording: named spans over simulated time, with an ASCII
//! Gantt renderer.
//!
//! Simulations opt in by pushing spans (`lane`, `label`, start, end); the
//! recorder is plain data — no coupling to the engine — so any subsystem
//! (deployment stages, solver phases, NIC busy periods) can annotate its
//! own activity and render a combined picture.

use crate::time::{SimDuration, SimTime};
use std::fmt::Write as _;

/// One recorded activity span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Row the span renders on ("node3", "rank 12", "registry").
    pub lane: String,
    /// What happened ("pull", "compute", "halo").
    pub label: String,
    /// Start instant.
    pub start: SimTime,
    /// End instant.
    pub end: SimTime,
}

/// A collection of spans.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    spans: Vec<Span>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Timeline {
        Timeline::default()
    }

    /// Record a span.
    ///
    /// # Panics
    /// Panics (debug) if `end < start`.
    pub fn record(&mut self, lane: &str, label: &str, start: SimTime, end: SimTime) {
        debug_assert!(end >= start, "span ends before it starts");
        self.spans.push(Span {
            lane: lane.to_string(),
            label: label.to_string(),
            start,
            end,
        });
    }

    /// Number of spans recorded.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// All spans on a lane, in recording order.
    pub fn lane_spans(&self, lane: &str) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.lane == lane).collect()
    }

    /// Total busy time on a lane (spans may not overlap for this to be
    /// meaningful; overlaps are summed as-is).
    pub fn lane_busy(&self, lane: &str) -> SimDuration {
        self.lane_spans(lane)
            .iter()
            .map(|s| s.end.since(s.start))
            .sum()
    }

    /// The latest end time across all spans.
    pub fn horizon(&self) -> SimTime {
        self.spans
            .iter()
            .map(|s| s.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Distinct lanes in first-appearance order.
    pub fn lanes(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for s in &self.spans {
            if !out.contains(&s.lane) {
                out.push(s.lane.clone());
            }
        }
        out
    }

    /// Render an ASCII Gantt chart, `width` characters across the full
    /// simulated horizon. Each span draws its label's first letter.
    pub fn to_ascii(&self, width: usize) -> String {
        let horizon = self.horizon();
        if horizon == SimTime::ZERO || self.spans.is_empty() {
            return "(empty timeline)\n".to_string();
        }
        let scale = width as f64 / horizon.as_secs_f64();
        let lanes = self.lanes();
        let name_w = lanes.iter().map(String::len).max().unwrap_or(4).max(4);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:name_w$} |{}| 0 .. {}",
            "lane",
            "-".repeat(width),
            horizon
        );
        for lane in &lanes {
            let mut row = vec![' '; width];
            for s in self.lane_spans(lane) {
                let a = (s.start.as_secs_f64() * scale) as usize;
                let b = ((s.end.as_secs_f64() * scale) as usize).max(a + 1);
                let glyph = s.label.chars().next().unwrap_or('#');
                for cell in row.iter_mut().take(b.min(width)).skip(a.min(width - 1)) {
                    *cell = glyph;
                }
            }
            let _ = writeln!(out, "{lane:name_w$} |{}|", row.iter().collect::<String>());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(s)
    }

    fn sample() -> Timeline {
        let mut tl = Timeline::new();
        tl.record("node0", "pull", t(0.0), t(4.0));
        tl.record("node0", "start", t(4.0), t(5.0));
        tl.record("node1", "pull", t(0.0), t(6.0));
        tl.record("node1", "start", t(6.0), t(7.0));
        tl
    }

    #[test]
    fn accounting() {
        let tl = sample();
        assert_eq!(tl.len(), 4);
        assert!(!tl.is_empty());
        assert_eq!(tl.lanes(), vec!["node0".to_string(), "node1".to_string()]);
        assert_eq!(tl.lane_busy("node0"), SimDuration::from_secs(5));
        assert_eq!(tl.horizon(), t(7.0));
        assert_eq!(tl.lane_spans("node1").len(), 2);
        assert_eq!(tl.lane_busy("ghost"), SimDuration::ZERO);
    }

    #[test]
    fn gantt_renders_rows_and_glyphs() {
        let g = sample().to_ascii(35);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("node0"));
        assert!(lines[1].contains('p') && lines[1].contains('s'));
        // node1 pulls longer than node0
        let count_p = |l: &str| l.matches('p').count();
        assert!(count_p(lines[2]) > count_p(lines[1]));
    }

    #[test]
    fn empty_timeline_renders_placeholder() {
        assert_eq!(Timeline::new().to_ascii(40), "(empty timeline)\n");
    }
}
