//! The event loop.
//!
//! An [`Engine<S>`] owns the simulated clock and the pending-event set; the
//! user owns a state value `S` that every event callback receives mutably
//! alongside the engine itself, so callbacks can both mutate the model and
//! schedule further events.
//!
//! ```
//! use harborsim_des::{Engine, SimDuration};
//!
//! let mut engine: Engine<u32> = Engine::new();
//! engine.schedule(SimDuration::from_secs(1), |eng, count| {
//!     *count += 1;
//!     // chain another event 500ms later
//!     eng.schedule(SimDuration::from_millis(500), |_, count| *count += 10);
//! });
//! let mut count = 0;
//! engine.run(&mut count);
//! assert_eq!(count, 11);
//! assert_eq!(engine.now().as_secs_f64(), 1.5);
//! ```
//!
//! # Two event representations
//!
//! The engine is generic over the event payload `E`. The default,
//! [`BoxedEvent<S>`], is a boxed `FnOnce` — maximally convenient, one heap
//! allocation per event. Hot loops (the message-level MPI engine) instead
//! define a plain `enum` of their event kinds, implement [`Event`] for it,
//! and schedule through [`Engine::schedule_event`]: payloads then live in a
//! slab arena with free-list reuse, the heap orders packed `(time, seq)`
//! integers, and the steady-state loop performs **zero** heap allocations.
//! Cancellation is an O(1) generation bump in the arena — no tombstone set
//! to grow or drain.

use crate::arena::EventArena;
use crate::heap::EventHeap;
use crate::time::{SimDuration, SimTime};
use std::marker::PhantomData;

/// Handle to a cancellable event, returned by
/// [`Engine::schedule_cancellable`]. The handle is `(slot, generation)`
/// into the engine's event arena; cancelling a fired or already-cancelled
/// event fails the generation check and is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    slot: u32,
    generation: u32,
}

/// A typed event: fired by value, with the engine and user state in hand.
///
/// Implementors are usually small `Copy` enums; the trait consumes `self`
/// so closures-captured-by-value (via [`BoxedEvent`]) fit the same shape.
pub trait Event<S>: Sized {
    /// Execute the event.
    fn fire(self, eng: &mut Engine<S, Self>, state: &mut S);
}

/// The callback type carried by a [`BoxedEvent`].
type EventFn<S> = Box<dyn FnOnce(&mut Engine<S>, &mut S)>;

/// The fallback event representation: a boxed `FnOnce` callback. This is
/// the default type parameter of [`Engine`], so `Engine<S>` keeps the
/// closure-based API unchanged.
pub struct BoxedEvent<S>(EventFn<S>);

impl<S> Event<S> for BoxedEvent<S> {
    fn fire(self, eng: &mut Engine<S>, state: &mut S) {
        (self.0)(eng, state)
    }
}

/// A deterministic discrete-event simulation engine over user state `S`.
pub struct Engine<S, E = BoxedEvent<S>> {
    now: SimTime,
    heap: EventHeap,
    arena: EventArena<E>,
    executed: u64,
    horizon: SimTime,
    _state: PhantomData<fn(&mut S)>,
}

impl<S, E: Event<S>> Default for Engine<S, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S, E: Event<S>> Engine<S, E> {
    /// A fresh engine with the clock at zero and no horizon.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            heap: EventHeap::new(),
            arena: EventArena::new(),
            executed: 0,
            horizon: SimTime::MAX,
            _state: PhantomData,
        }
    }

    /// A fresh engine with room for `n` pending events before the heap or
    /// arena reallocate.
    pub fn with_capacity(n: usize) -> Self {
        Engine {
            now: SimTime::ZERO,
            heap: EventHeap::with_capacity(n),
            arena: EventArena::with_capacity(n),
            executed: 0,
            horizon: SimTime::MAX,
            _state: PhantomData,
        }
    }

    /// Return the engine to its initial state — clock at zero, no pending
    /// events, no horizon — while keeping the heap and arena allocations.
    /// Outstanding [`EventId`] handles are invalidated.
    pub fn reset(&mut self) {
        self.now = SimTime::ZERO;
        self.heap.clear();
        self.arena.clear();
        self.executed = 0;
        self.horizon = SimTime::MAX;
    }

    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending (including cancelled tombstones).
    pub fn events_pending(&self) -> usize {
        self.heap.len()
    }

    /// Stop the run loop once the clock would pass `at`. Events scheduled
    /// strictly after the horizon are left unexecuted.
    pub fn set_horizon(&mut self, at: SimTime) {
        self.horizon = at;
    }

    /// Schedule a typed event after `delay` from the current time.
    #[inline]
    pub fn schedule_event(&mut self, delay: SimDuration, event: E) {
        self.schedule_event_at(self.now + delay, event);
    }

    /// Schedule a typed event at an absolute time `at` (not in the past).
    #[inline]
    pub fn schedule_event_at(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "cannot schedule into the past");
        let (slot, _) = self.arena.insert(event);
        self.heap.push(at, slot);
    }

    /// Schedule a typed event after `delay`, returning a handle that can
    /// cancel it before it fires.
    #[inline]
    pub fn schedule_cancellable_event(&mut self, delay: SimDuration, event: E) -> EventId {
        let at = self.now + delay;
        debug_assert!(at >= self.now, "cannot schedule into the past");
        let (slot, generation) = self.arena.insert(event);
        self.heap.push(at, slot);
        EventId { slot, generation }
    }

    /// Cancel a previously scheduled cancellable event. Cancelling an event
    /// that already fired is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.arena.cancel(id.slot, id.generation);
    }

    /// Run until the event set is exhausted or the horizon is reached.
    /// Returns the number of events executed during this call.
    pub fn run(&mut self, state: &mut S) -> u64 {
        let before = self.executed;
        while let Some((at, slot)) = self.heap.pop_within(self.horizon) {
            let Some(event) = self.arena.take(slot) else {
                continue; // cancelled tombstone
            };
            debug_assert!(at >= self.now, "event queue went backwards");
            self.now = at;
            self.executed += 1;
            event.fire(self, state);
        }
        self.executed - before
    }

    /// Run until at most `limit` further events have executed (safety valve
    /// for tests against runaway event cascades). Returns `true` if the event
    /// set was exhausted within the budget.
    pub fn run_bounded(&mut self, state: &mut S, limit: u64) -> bool {
        let mut n = 0;
        loop {
            if n >= limit {
                return match self.heap.peek_time() {
                    Some(at) => at > self.horizon,
                    None => true,
                };
            }
            let Some((at, slot)) = self.heap.pop_within(self.horizon) else {
                return true;
            };
            let Some(event) = self.arena.take(slot) else {
                continue;
            };
            self.now = at;
            self.executed += 1;
            n += 1;
            event.fire(self, state);
        }
    }
}

impl<S> Engine<S, BoxedEvent<S>> {
    /// Schedule `f` to run after `delay` from the current time.
    pub fn schedule<F>(&mut self, delay: SimDuration, f: F)
    where
        F: FnOnce(&mut Engine<S>, &mut S) + 'static,
    {
        self.schedule_event(delay, BoxedEvent(Box::new(f)));
    }

    /// Schedule `f` at an absolute time `at` (must not be in the past).
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F)
    where
        F: FnOnce(&mut Engine<S>, &mut S) + 'static,
    {
        self.schedule_event_at(at, BoxedEvent(Box::new(f)));
    }

    /// Schedule `f` after `delay`, returning a handle that can cancel it
    /// before it fires (used by the fluid-link model to retract completion
    /// estimates when the set of competing flows changes).
    pub fn schedule_cancellable<F>(&mut self, delay: SimDuration, f: F) -> EventId
    where
        F: FnOnce(&mut Engine<S>, &mut S) + 'static,
    {
        self.schedule_cancellable_event(delay, BoxedEvent(Box::new(f)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_order_and_clock_advances() {
        let mut eng: Engine<Vec<(u64, &'static str)>> = Engine::new();
        eng.schedule(SimDuration::from_secs(2), |e, log| {
            log.push((e.now().as_nanos(), "b"))
        });
        eng.schedule(SimDuration::from_secs(1), |e, log| {
            log.push((e.now().as_nanos(), "a"))
        });
        let mut log = Vec::new();
        let n = eng.run(&mut log);
        assert_eq!(n, 2);
        assert_eq!(log, vec![(1_000_000_000, "a"), (2_000_000_000, "b")]);
    }

    #[test]
    fn chained_events_see_updated_now() {
        let mut eng: Engine<Vec<f64>> = Engine::new();
        eng.schedule(SimDuration::from_secs(1), |e, times| {
            times.push(e.now().as_secs_f64());
            e.schedule(SimDuration::from_secs(1), |e, times| {
                times.push(e.now().as_secs_f64());
            });
        });
        let mut times = Vec::new();
        eng.run(&mut times);
        assert_eq!(times, vec![1.0, 2.0]);
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut eng: Engine<u32> = Engine::new();
        let id = eng.schedule_cancellable(SimDuration::from_secs(1), |_, c| *c += 1);
        eng.schedule(SimDuration::from_millis(500), move |e, _| e.cancel(id));
        let mut count = 0;
        eng.run(&mut count);
        assert_eq!(count, 0);
        // two events were processed, but one was a tombstone
        assert_eq!(eng.events_executed(), 1);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut eng: Engine<u32> = Engine::new();
        let id = eng.schedule_cancellable(SimDuration::from_millis(1), |_, c| *c += 1);
        let mut count = 0;
        eng.run(&mut count);
        eng.cancel(id); // already fired
        eng.run(&mut count);
        assert_eq!(count, 1);
    }

    #[test]
    fn cancel_does_not_hit_recycled_slot() {
        let mut eng: Engine<u32> = Engine::new();
        let id = eng.schedule_cancellable(SimDuration::from_millis(1), |_, c| *c += 1);
        let mut count = 0;
        eng.run(&mut count);
        // the fired event's slot is recycled by the next schedule
        let _id2 = eng.schedule_cancellable(SimDuration::from_millis(1), |_, c| *c += 10);
        eng.cancel(id); // stale handle must not cancel the new event
        eng.run(&mut count);
        assert_eq!(count, 11);
    }

    #[test]
    fn horizon_stops_execution() {
        let mut eng: Engine<u32> = Engine::new();
        for i in 1..=10 {
            eng.schedule(SimDuration::from_secs(i), |_, c| *c += 1);
        }
        eng.set_horizon(SimTime::ZERO + SimDuration::from_secs(5));
        let mut count = 0;
        eng.run(&mut count);
        assert_eq!(count, 5);
        assert_eq!(eng.events_pending(), 5);
    }

    #[test]
    fn run_bounded_reports_exhaustion() {
        let mut eng: Engine<u32> = Engine::new();
        for _ in 0..4 {
            eng.schedule(SimDuration::from_secs(1), |_, c| *c += 1);
        }
        let mut count = 0;
        assert!(!eng.run_bounded(&mut count, 2));
        assert_eq!(count, 2);
        assert!(eng.run_bounded(&mut count, 100));
        assert_eq!(count, 4);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        for i in 0..50 {
            eng.schedule(SimDuration::from_secs(1), move |_, log| log.push(i));
        }
        let mut log = Vec::new();
        eng.run(&mut log);
        assert_eq!(log, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn typed_events_fire_without_boxing() {
        #[derive(Clone, Copy)]
        enum Ev {
            Tick(u64),
            Stop,
        }
        impl Event<u64> for Ev {
            fn fire(self, eng: &mut Engine<u64, Ev>, count: &mut u64) {
                match self {
                    Ev::Tick(left) => {
                        *count += 1;
                        if left > 1 {
                            eng.schedule_event(SimDuration::from_nanos(5), Ev::Tick(left - 1));
                        } else {
                            eng.schedule_event(SimDuration::ZERO, Ev::Stop);
                        }
                    }
                    Ev::Stop => {}
                }
            }
        }
        let mut eng: Engine<u64, Ev> = Engine::with_capacity(4);
        eng.schedule_event(SimDuration::from_nanos(5), Ev::Tick(100));
        let mut count = 0;
        eng.run(&mut count);
        assert_eq!(count, 100);
        assert_eq!(eng.events_executed(), 101);
        assert_eq!(eng.now().as_nanos(), 500);
    }

    #[test]
    fn reset_reuses_engine_and_invalidates_handles() {
        let mut eng: Engine<u32> = Engine::new();
        let id = eng.schedule_cancellable(SimDuration::from_secs(1), |_, c| *c += 1);
        eng.set_horizon(SimTime::ZERO);
        eng.reset();
        assert_eq!(eng.events_pending(), 0);
        assert_eq!(eng.events_executed(), 0);
        eng.schedule(SimDuration::from_secs(1), |_, c| *c += 10);
        eng.cancel(id); // pre-reset handle must not touch the new event
        let mut count = 0;
        eng.run(&mut count);
        assert_eq!(count, 10);
        assert_eq!(eng.now().as_secs_f64(), 1.0);
    }
}
