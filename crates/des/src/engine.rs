//! The event loop.
//!
//! An [`Engine<S>`] owns the simulated clock and the pending-event set; the
//! user owns a state value `S` that every event callback receives mutably
//! alongside the engine itself, so callbacks can both mutate the model and
//! schedule further events.
//!
//! ```
//! use harborsim_des::{Engine, SimDuration};
//!
//! let mut engine: Engine<u32> = Engine::new();
//! engine.schedule(SimDuration::from_secs(1), |eng, count| {
//!     *count += 1;
//!     // chain another event 500ms later
//!     eng.schedule(SimDuration::from_millis(500), |_, count| *count += 10);
//! });
//! let mut count = 0;
//! engine.run(&mut count);
//! assert_eq!(count, 11);
//! assert_eq!(engine.now().as_secs_f64(), 1.5);
//! ```

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};
use std::collections::HashSet;

/// Handle to a cancellable event, returned by
/// [`Engine::schedule_cancellable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

type EventFn<S> = Box<dyn FnOnce(&mut Engine<S>, &mut S)>;

struct Entry<S> {
    /// `Some(id)` for cancellable events; checked against the tombstone set
    /// at pop time.
    id: Option<u64>,
    f: EventFn<S>,
}

/// A deterministic discrete-event simulation engine over user state `S`.
pub struct Engine<S> {
    now: SimTime,
    queue: EventQueue<Entry<S>>,
    cancelled: HashSet<u64>,
    next_id: u64,
    executed: u64,
    horizon: SimTime,
}

impl<S> Default for Engine<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> Engine<S> {
    /// A fresh engine with the clock at zero and no horizon.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            cancelled: HashSet::new(),
            next_id: 0,
            executed: 0,
            horizon: SimTime::MAX,
        }
    }

    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending (including cancelled tombstones).
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Stop the run loop once the clock would pass `at`. Events scheduled
    /// strictly after the horizon are left unexecuted.
    pub fn set_horizon(&mut self, at: SimTime) {
        self.horizon = at;
    }

    /// Schedule `f` to run after `delay` from the current time.
    pub fn schedule<F>(&mut self, delay: SimDuration, f: F)
    where
        F: FnOnce(&mut Engine<S>, &mut S) + 'static,
    {
        self.schedule_at(self.now + delay, f);
    }

    /// Schedule `f` at an absolute time `at` (must not be in the past).
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F)
    where
        F: FnOnce(&mut Engine<S>, &mut S) + 'static,
    {
        debug_assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(
            at,
            Entry {
                id: None,
                f: Box::new(f),
            },
        );
    }

    /// Schedule `f` after `delay`, returning a handle that can cancel it
    /// before it fires (used by the fluid-link model to retract completion
    /// estimates when the set of competing flows changes).
    pub fn schedule_cancellable<F>(&mut self, delay: SimDuration, f: F) -> EventId
    where
        F: FnOnce(&mut Engine<S>, &mut S) + 'static,
    {
        let id = self.next_id;
        self.next_id += 1;
        self.queue.push(
            self.now + delay,
            Entry {
                id: Some(id),
                f: Box::new(f),
            },
        );
        EventId(id)
    }

    /// Cancel a previously scheduled cancellable event. Cancelling an event
    /// that already fired is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id.0);
    }

    /// Run until the event set is exhausted or the horizon is reached.
    /// Returns the number of events executed during this call.
    pub fn run(&mut self, state: &mut S) -> u64 {
        let before = self.executed;
        while let Some(at) = self.queue.peek_time() {
            if at > self.horizon {
                break;
            }
            let entry = self.queue.pop().expect("peeked entry vanished");
            if let Some(id) = entry.payload.id {
                if self.cancelled.remove(&id) {
                    continue;
                }
            }
            debug_assert!(entry.at >= self.now, "event queue went backwards");
            self.now = entry.at;
            self.executed += 1;
            (entry.payload.f)(self, state);
        }
        self.executed - before
    }

    /// Run until at most `limit` further events have executed (safety valve
    /// for tests against runaway event cascades). Returns `true` if the event
    /// set was exhausted within the budget.
    pub fn run_bounded(&mut self, state: &mut S, limit: u64) -> bool {
        let mut n = 0;
        while let Some(at) = self.queue.peek_time() {
            if at > self.horizon {
                return true;
            }
            if n >= limit {
                return false;
            }
            let entry = self.queue.pop().expect("peeked entry vanished");
            if let Some(id) = entry.payload.id {
                if self.cancelled.remove(&id) {
                    continue;
                }
            }
            self.now = entry.at;
            self.executed += 1;
            n += 1;
            (entry.payload.f)(self, state);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_order_and_clock_advances() {
        let mut eng: Engine<Vec<(u64, &'static str)>> = Engine::new();
        eng.schedule(SimDuration::from_secs(2), |e, log| {
            log.push((e.now().as_nanos(), "b"))
        });
        eng.schedule(SimDuration::from_secs(1), |e, log| {
            log.push((e.now().as_nanos(), "a"))
        });
        let mut log = Vec::new();
        let n = eng.run(&mut log);
        assert_eq!(n, 2);
        assert_eq!(log, vec![(1_000_000_000, "a"), (2_000_000_000, "b")]);
    }

    #[test]
    fn chained_events_see_updated_now() {
        let mut eng: Engine<Vec<f64>> = Engine::new();
        eng.schedule(SimDuration::from_secs(1), |e, times| {
            times.push(e.now().as_secs_f64());
            e.schedule(SimDuration::from_secs(1), |e, times| {
                times.push(e.now().as_secs_f64());
            });
        });
        let mut times = Vec::new();
        eng.run(&mut times);
        assert_eq!(times, vec![1.0, 2.0]);
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut eng: Engine<u32> = Engine::new();
        let id = eng.schedule_cancellable(SimDuration::from_secs(1), |_, c| *c += 1);
        eng.schedule(SimDuration::from_millis(500), move |e, _| e.cancel(id));
        let mut count = 0;
        eng.run(&mut count);
        assert_eq!(count, 0);
        // two events were processed, but one was a tombstone
        assert_eq!(eng.events_executed(), 1);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut eng: Engine<u32> = Engine::new();
        let id = eng.schedule_cancellable(SimDuration::from_millis(1), |_, c| *c += 1);
        let mut count = 0;
        eng.run(&mut count);
        eng.cancel(id); // already fired
        eng.run(&mut count);
        assert_eq!(count, 1);
    }

    #[test]
    fn horizon_stops_execution() {
        let mut eng: Engine<u32> = Engine::new();
        for i in 1..=10 {
            eng.schedule(SimDuration::from_secs(i), |_, c| *c += 1);
        }
        eng.set_horizon(SimTime::ZERO + SimDuration::from_secs(5));
        let mut count = 0;
        eng.run(&mut count);
        assert_eq!(count, 5);
        assert_eq!(eng.events_pending(), 5);
    }

    #[test]
    fn run_bounded_reports_exhaustion() {
        let mut eng: Engine<u32> = Engine::new();
        for _ in 0..4 {
            eng.schedule(SimDuration::from_secs(1), |_, c| *c += 1);
        }
        let mut count = 0;
        assert!(!eng.run_bounded(&mut count, 2));
        assert_eq!(count, 2);
        assert!(eng.run_bounded(&mut count, 100));
        assert_eq!(count, 4);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        for i in 0..50 {
            eng.schedule(SimDuration::from_secs(1), move |_, log| log.push(i));
        }
        let mut log = Vec::new();
        eng.run(&mut log);
        assert_eq!(log, (0..50).collect::<Vec<_>>());
    }
}
