//! # harborsim-des
//!
//! A small, fast, **deterministic** discrete-event simulation (DES) kernel.
//!
//! The kernel is deliberately process-less: events are values scheduled at
//! absolute simulated times, executed in `(time, sequence)` order so that
//! simultaneous events always fire in the order they were scheduled.
//! Payloads live in a slab arena indexed by a 4-ary min-heap of packed
//! `(time, seq)` keys; convenience callers use boxed `FnOnce` callbacks
//! ([`BoxedEvent`], the default), hot loops implement [`Event`] on a plain
//! enum and run allocation-free. Determinism is a hard requirement for the
//! HarborSim study — the same seed must regenerate byte-identical figures.
//!
//! Building blocks:
//!
//! - [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated clock.
//! - [`Engine`] — the event loop; schedule with [`Engine::schedule`] or the
//!   cancellable [`Engine::schedule_cancellable`].
//! - [`EventCore`] — the engine's slab + heap + clock as a standalone
//!   per-shard unit with caller-packed keys and a caller-owned loop, for
//!   conservatively synchronized parallel simulations.
//! - [`Resource`] — a FIFO server pool with finite capacity (models NICs,
//!   registry connections, filesystem servers, daemons...).
//! - [`FluidLink`] — a fair-share ("fluid flow") bandwidth model for shared
//!   links where concurrent transfers split capacity (parallel filesystems,
//!   registry uplinks).
//! - [`rng`] — seedable SplitMix64 streams with label-derived substreams.
//! - [`stats`] — counters, time-weighted means, and fixed-bin histograms.
//! - [`trace`] — typed spans, counters, and deterministic roll-ups: the
//!   [`Recorder`] every simulation layer reports through.

mod arena;
pub mod core;
pub mod engine;
pub mod fluid;
mod heap;
pub mod queue;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;
pub mod timeline;
pub mod trace;

pub use crate::core::EventCore;
pub use engine::{BoxedEvent, Engine, Event, EventId};
pub use fluid::FluidLink;
pub use resource::{CoreResource, Resource, TypedResource};
pub use rng::RngStream;
pub use time::{SimDuration, SimTime};
pub use timeline::Timeline;
pub use trace::{AttrValue, Recorder, Rollup, Span, SpanCategory, TraceBuffer};
