//! Deterministic random-number streams.
//!
//! HarborSim needs reproducibility above statistical sophistication: the same
//! master seed must yield the same figures on every machine and every run.
//! We therefore carry our own SplitMix64 implementation (stable across crate
//! versions, trivially auditable) and derive *named substreams* so that adding
//! a new consumer of randomness never perturbs existing ones.

/// A deterministic SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct RngStream {
    state: u64,
}

/// FNV-1a hash of a label, used to derive independent substreams.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RngStream {
    /// The root stream for a master seed.
    pub fn new(seed: u64) -> Self {
        // one warm-up scramble so that small seeds don't produce small outputs
        let mut state = seed;
        splitmix64(&mut state);
        RngStream { state }
    }

    /// Derive an independent substream named `label`. Streams derived with
    /// different labels from the same parent are decorrelated; the parent is
    /// not advanced.
    pub fn derive(&self, label: &str) -> RngStream {
        let mut state = self.state ^ fnv1a(label.as_bytes()).rotate_left(17);
        splitmix64(&mut state);
        RngStream { state }
    }

    /// Derive an independent substream indexed by `idx` (e.g. per-rank).
    pub fn derive_idx(&self, idx: u64) -> RngStream {
        let mut state = self.state ^ fnv1a(&idx.to_le_bytes()).rotate_left(29);
        splitmix64(&mut state);
        RngStream { state }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` via rejection-free Lemire reduction.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Standard normal via Box–Muller (one value per call; the pair's twin is
    /// discarded to keep the stream stateless beyond `state`).
    pub fn standard_normal(&mut self) -> f64 {
        // avoid u1 == 0 exactly
        let u1 = (self.uniform()).max(1e-300);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// A multiplicative log-normal jitter factor with median 1 and the given
    /// sigma of `ln(factor)`. Models run-to-run performance variance; the
    /// paper reports averages over repeated runs, and so do we.
    pub fn lognormal_factor(&mut self, sigma: f64) -> f64 {
        (sigma * self.standard_normal()).exp()
    }

    /// Exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        -mean * (1.0 - self.uniform()).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = RngStream::new(42);
        let mut b = RngStream::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = RngStream::new(1);
        let mut b = RngStream::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derived_streams_are_decorrelated_and_stable() {
        let root = RngStream::new(7);
        let mut x1 = root.derive("net");
        let mut x2 = root.derive("net");
        let mut y = root.derive("cpu");
        let a = x1.next_u64();
        assert_eq!(a, x2.next_u64(), "same label must derive same stream");
        assert_ne!(a, y.next_u64(), "different labels must differ");
    }

    #[test]
    fn derive_idx_distinct() {
        let root = RngStream::new(7);
        let vals: Vec<u64> = (0..32).map(|i| root.derive_idx(i).next_u64()).collect();
        let mut dedup = vals.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), vals.len());
    }

    #[test]
    fn uniform_in_unit_interval_and_roughly_uniform() {
        let mut r = RngStream::new(123);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn below_bounds() {
        let mut r = RngStream::new(9);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn normal_mean_and_sd() {
        let mut r = RngStream::new(55);
        let n = 50_000;
        let (mut s, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.standard_normal();
            s += x;
            s2 += x * x;
        }
        let mean = s / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn lognormal_median_near_one() {
        let mut r = RngStream::new(77);
        let mut vals: Vec<f64> = (0..10_001).map(|_| r.lognormal_factor(0.05)).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = vals[vals.len() / 2];
        assert!((median - 1.0).abs() < 0.01, "median={median}");
        assert!(vals.iter().all(|v| *v > 0.0));
    }

    #[test]
    fn exponential_mean() {
        let mut r = RngStream::new(31);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean={mean}");
    }
}
