//! Lightweight statistics collectors used across the simulator.

use crate::time::{SimDuration, SimTime};

/// Running summary of a scalar series: count, mean, min, max and variance via
/// Welford's online algorithm.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Relative spread `(max-min)/mean`, useful for jitter assertions.
    pub fn relative_spread(&self) -> f64 {
        if self.n == 0 || self.mean == 0.0 {
            0.0
        } else {
            (self.max - self.min) / self.mean
        }
    }

    /// Merge another summary into this one (parallel Welford combination).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A time-weighted gauge: tracks the integral of a piecewise-constant value
/// over simulated time (queue depths, active-flow counts, utilization).
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    value: f64,
    integral: f64,
    last_change: SimTime,
    peak: f64,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        TimeWeighted {
            value: 0.0,
            integral: 0.0,
            last_change: SimTime::ZERO,
            peak: 0.0,
        }
    }

    /// Set the gauge to `value` at time `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        self.integral += self.value * now.since(self.last_change).as_secs_f64();
        self.last_change = now;
        self.value = value;
        self.peak = self.peak.max(value);
    }

    /// Add `delta` to the gauge at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Peak value observed.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-weighted mean over `[0, now]`.
    pub fn mean(&self, now: SimTime) -> f64 {
        let t = now.as_secs_f64();
        if t == 0.0 {
            return self.value;
        }
        let integral = self.integral + self.value * now.since(self.last_change).as_secs_f64();
        integral / t
    }
}

/// Fixed-width-bin histogram of durations, with overflow bin.
#[derive(Debug, Clone)]
pub struct DurationHistogram {
    bin_width: SimDuration,
    bins: Vec<u64>,
    overflow: u64,
    total: u64,
    sum_ns: u128,
}

impl DurationHistogram {
    /// `nbins` bins of `bin_width` each, plus an overflow bin.
    pub fn new(bin_width: SimDuration, nbins: usize) -> Self {
        assert!(bin_width > SimDuration::ZERO && nbins > 0);
        DurationHistogram {
            bin_width,
            bins: vec![0; nbins],
            overflow: 0,
            total: 0,
            sum_ns: 0,
        }
    }

    /// Record one duration.
    pub fn record(&mut self, d: SimDuration) {
        let idx = (d.as_nanos() / self.bin_width.as_nanos()) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
        self.sum_ns += d.as_nanos() as u128;
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean recorded duration.
    pub fn mean(&self) -> SimDuration {
        if self.total == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos((self.sum_ns / self.total as u128) as u64)
        }
    }

    /// The smallest duration `d` such that at least `q` (0..=1) of samples
    /// are `<= d`, at bin resolution. Overflowed samples count as `MAX`.
    pub fn quantile(&self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q));
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        let target = (q * self.total as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            acc += c;
            if acc >= target {
                return SimDuration::from_nanos((i as u64 + 1) * self.bin_width.as_nanos());
            }
        }
        SimDuration(u64::MAX)
    }

    /// Samples that exceeded the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mean_var() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn summary_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let mut all = Summary::new();
        for &x in &xs {
            all.record(x);
        }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &x in &xs[..37] {
            left.record(x);
        }
        for &x in &xs[37..] {
            right.record(x);
        }
        left.merge(&right);
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(left.count(), all.count());
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.relative_spread(), 0.0);
    }

    #[test]
    fn time_weighted_mean() {
        let mut g = TimeWeighted::new();
        g.set(SimTime(0), 2.0);
        g.set(SimTime(1_000_000_000), 4.0);
        // value 2 for 1s, then 4 for 1s -> mean 3 at t=2s
        let m = g.mean(SimTime(2_000_000_000));
        assert!((m - 3.0).abs() < 1e-12);
        assert_eq!(g.peak(), 4.0);
    }

    #[test]
    fn time_weighted_add() {
        let mut g = TimeWeighted::new();
        g.add(SimTime(0), 1.0);
        g.add(SimTime(500_000_000), 1.0);
        g.add(SimTime(1_000_000_000), -2.0);
        assert_eq!(g.value(), 0.0);
        let m = g.mean(SimTime(1_000_000_000));
        assert!((m - 1.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = DurationHistogram::new(SimDuration::from_millis(1), 100);
        for i in 0..100u64 {
            h.record(SimDuration::from_micros(i * 1000 + 500)); // i.5 ms
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.overflow(), 0);
        let p50 = h.quantile(0.5);
        assert_eq!(p50, SimDuration::from_millis(50));
        let p99 = h.quantile(0.99);
        assert_eq!(p99, SimDuration::from_millis(99));
        assert!((h.mean().as_millis_f64() - 50.0).abs() < 0.51);
    }

    #[test]
    fn histogram_overflow() {
        let mut h = DurationHistogram::new(SimDuration::from_millis(1), 10);
        h.record(SimDuration::from_secs(1));
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.quantile(1.0), SimDuration(u64::MAX));
    }
}
