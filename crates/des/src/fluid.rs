//! Fair-share ("fluid flow") bandwidth links.
//!
//! A [`FluidLink`] models a shared pipe of fixed capacity where every active
//! transfer progresses at `capacity / n` — the idealized behaviour of TCP
//! flows sharing a bottleneck, of compute nodes hammering a parallel
//! filesystem, or of layer downloads sharing a registry uplink.
//!
//! Implementation: piecewise-constant rates. Whenever the set of active flows
//! changes, every flow's remaining volume is advanced to "now" and the single
//! pending completion timer is retracted and re-aimed at the new earliest
//! finisher. This is exact for the fluid model (no time-stepping error) and
//! costs `O(n)` per flow arrival/departure.

use crate::engine::{Engine, EventId};
use crate::time::{SimDuration, SimTime};

type Cont<S> = Box<dyn FnOnce(&mut Engine<S>, &mut S)>;

/// Volume below which a flow counts as finished (absorbs floating-point
/// residue from repeated rate changes).
const DONE_EPS_BYTES: f64 = 1e-6;

struct Flow<S> {
    size: f64,
    remaining: f64,
    cont: Option<Cont<S>>,
}

/// A shared link of fixed capacity with max-min fair sharing.
///
/// Because completion timers must find the link again from inside an event
/// callback, the link is constructed with an *accessor*: a plain `fn` that
/// projects the user state `S` to this link.
pub struct FluidLink<S> {
    capacity_bps: f64,
    flows: Vec<Flow<S>>,
    last_advance: SimTime,
    timer: Option<EventId>,
    accessor: fn(&mut S) -> &mut FluidLink<S>,
    completed_flows: u64,
    bytes_completed: f64,
    peak_concurrency: usize,
}

impl<S: 'static> FluidLink<S> {
    /// A link carrying `capacity_bytes_per_sec`, reachable through
    /// `accessor` from the simulation state.
    ///
    /// # Panics
    /// Panics if the capacity is not strictly positive and finite.
    pub fn new(capacity_bytes_per_sec: f64, accessor: fn(&mut S) -> &mut FluidLink<S>) -> Self {
        assert!(
            capacity_bytes_per_sec.is_finite() && capacity_bytes_per_sec > 0.0,
            "link capacity must be positive"
        );
        FluidLink {
            capacity_bps: capacity_bytes_per_sec,
            flows: Vec::new(),
            last_advance: SimTime::ZERO,
            timer: None,
            accessor,
            completed_flows: 0,
            bytes_completed: 0.0,
            peak_concurrency: 0,
        }
    }

    /// Begin transferring `bytes`; `cont` runs when the transfer completes
    /// under fair sharing with all concurrently active flows.
    pub fn start_flow<F>(&mut self, eng: &mut Engine<S>, bytes: f64, cont: F)
    where
        F: FnOnce(&mut Engine<S>, &mut S) + 'static,
    {
        assert!(
            bytes.is_finite() && bytes >= 0.0,
            "flow size must be non-negative"
        );
        self.advance(eng.now());
        let size = bytes.max(DONE_EPS_BYTES);
        self.flows.push(Flow {
            size,
            remaining: size,
            cont: Some(Box::new(cont)),
        });
        self.peak_concurrency = self.peak_concurrency.max(self.flows.len());
        self.reschedule(eng);
    }

    /// Number of flows currently in progress.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Flows completed so far.
    pub fn completed_flows(&self) -> u64 {
        self.completed_flows
    }

    /// Total volume delivered so far, in bytes.
    pub fn bytes_completed(&self) -> f64 {
        self.bytes_completed
    }

    /// Largest number of simultaneously active flows observed.
    pub fn peak_concurrency(&self) -> usize {
        self.peak_concurrency
    }

    /// Bring every active flow's remaining volume up to date.
    fn advance(&mut self, now: SimTime) {
        let dt = now.since(self.last_advance).as_secs_f64();
        self.last_advance = now;
        if dt <= 0.0 || self.flows.is_empty() {
            return;
        }
        let per_flow = self.capacity_bps / self.flows.len() as f64;
        let drained = per_flow * dt;
        for f in &mut self.flows {
            f.remaining -= drained;
        }
    }

    /// Pull out the continuations of every flow that has finished.
    fn take_completed(&mut self) -> Vec<Cont<S>> {
        let mut done = Vec::new();
        let mut i = 0;
        while i < self.flows.len() {
            if self.flows[i].remaining <= DONE_EPS_BYTES {
                let mut f = self.flows.swap_remove(i);
                self.completed_flows += 1;
                self.bytes_completed += f.size;
                if let Some(c) = f.cont.take() {
                    done.push(c);
                }
            } else {
                i += 1;
            }
        }
        done
    }

    /// Re-aim the completion timer at the earliest finisher.
    fn reschedule(&mut self, eng: &mut Engine<S>) {
        if let Some(t) = self.timer.take() {
            eng.cancel(t);
        }
        if self.flows.is_empty() {
            return;
        }
        let per_flow = self.capacity_bps / self.flows.len() as f64;
        let min_remaining = self
            .flows
            .iter()
            .map(|f| f.remaining)
            .fold(f64::INFINITY, f64::min);
        // overshoot by one clock tick: nanosecond rounding must never leave
        // the earliest flow fractionally unfinished (a 0 ns retry would spin
        // the event loop forever at the same instant)
        let dt = SimDuration::from_secs_f64((min_remaining / per_flow).max(0.0))
            .saturating_add(SimDuration::from_nanos(1));
        let acc = self.accessor;
        self.timer = Some(eng.schedule_cancellable(dt, move |eng, state| {
            Self::on_timer(eng, state, acc);
        }));
    }

    fn on_timer(eng: &mut Engine<S>, state: &mut S, acc: fn(&mut S) -> &mut FluidLink<S>) {
        let completed: Vec<Cont<S>> = {
            let link = acc(state);
            link.timer = None;
            link.advance(eng.now());
            link.take_completed()
        };
        for cont in completed {
            cont(eng, state);
        }
        let link = acc(state);
        link.reschedule(eng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct St {
        link: FluidLink<St>,
        finished: Vec<(u32, f64)>,
    }

    fn link_of(st: &mut St) -> &mut FluidLink<St> {
        &mut st.link
    }

    fn start(eng: &mut Engine<St>, at: SimDuration, idx: u32, bytes: f64) {
        eng.schedule(at, move |eng, st: &mut St| {
            st.link.start_flow(eng, bytes, move |eng, st| {
                st.finished.push((idx, eng.now().as_secs_f64()));
            });
        });
    }

    fn fresh() -> (Engine<St>, St) {
        (
            Engine::new(),
            St {
                link: FluidLink::new(100.0, link_of), // 100 B/s
                finished: Vec::new(),
            },
        )
    }

    #[test]
    fn single_flow_takes_bytes_over_rate() {
        let (mut eng, mut st) = fresh();
        start(&mut eng, SimDuration::ZERO, 0, 200.0);
        eng.run(&mut st);
        assert_eq!(st.finished.len(), 1);
        assert!((st.finished[0].1 - 2.0).abs() < 1e-6);
    }

    #[test]
    fn two_equal_flows_share_fairly() {
        let (mut eng, mut st) = fresh();
        start(&mut eng, SimDuration::ZERO, 0, 100.0);
        start(&mut eng, SimDuration::ZERO, 1, 100.0);
        eng.run(&mut st);
        // each gets 50 B/s -> both done at t=2
        assert_eq!(st.finished.len(), 2);
        for &(_, t) in &st.finished {
            assert!((t - 2.0).abs() < 1e-6, "t={t}");
        }
        assert_eq!(st.link.peak_concurrency(), 2);
    }

    #[test]
    fn late_arrival_slows_first_flow() {
        let (mut eng, mut st) = fresh();
        // flow 0: 100 B alone for 0.5s (50 B done), then shares.
        start(&mut eng, SimDuration::ZERO, 0, 100.0);
        start(&mut eng, SimDuration::from_millis(500), 1, 100.0);
        eng.run(&mut st);
        let t0 = st.finished.iter().find(|f| f.0 == 0).unwrap().1;
        let t1 = st.finished.iter().find(|f| f.0 == 1).unwrap().1;
        // flow0: 50 B left at t=0.5, rate 50 -> done at 1.5
        assert!((t0 - 1.5).abs() < 1e-6, "t0={t0}");
        // flow1: at t=1.5 it has transferred 50, 50 left at full rate -> 2.0
        assert!((t1 - 2.0).abs() < 1e-6, "t1={t1}");
    }

    #[test]
    fn conservation_of_bytes() {
        let (mut eng, mut st) = fresh();
        let sizes = [10.0, 250.0, 33.0, 120.0, 90.0];
        for (i, &b) in sizes.iter().enumerate() {
            start(
                &mut eng,
                SimDuration::from_millis(137 * i as u64),
                i as u32,
                b,
            );
        }
        eng.run(&mut st);
        assert_eq!(st.link.completed_flows(), sizes.len() as u64);
        let total: f64 = sizes.iter().sum();
        assert!(
            (st.link.bytes_completed() - total).abs() < 1e-3,
            "delivered {} expected {total}",
            st.link.bytes_completed()
        );
        // aggregate throughput can never beat capacity
        let makespan = eng.now().as_secs_f64();
        assert!(total / makespan <= 100.0 + 1e-6);
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let (mut eng, mut st) = fresh();
        start(&mut eng, SimDuration::ZERO, 0, 0.0);
        eng.run(&mut st);
        assert_eq!(st.finished.len(), 1);
        assert!(st.finished[0].1 < 1e-6);
    }

    #[test]
    fn storm_of_identical_flows_finishes_together() {
        let (mut eng, mut st) = fresh();
        for i in 0..64 {
            start(&mut eng, SimDuration::ZERO, i, 100.0);
        }
        eng.run(&mut st);
        assert_eq!(st.finished.len(), 64);
        for &(_, t) in &st.finished {
            assert!((t - 64.0).abs() < 1e-3, "t={t}");
        }
    }
}
