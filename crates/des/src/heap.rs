//! A 4-ary min-heap over packed `(time, sequence)` keys.
//!
//! The pending-event set of the [`Engine`](crate::engine::Engine) is a flat
//! pair of arrays: one `u128` key per entry (`time` in the high 64 bits,
//! the tie-breaking sequence number in the low 64) and one arena slot index.
//! Ordering a single integer instead of a struct keeps sift comparisons
//! branch-free, and the 4-ary layout halves the tree depth of a binary heap
//! — the shape that matters for the schedule-soon/pop-soon churn the MPI
//! protocol events produce, where entries rarely sink far.
//!
//! The sequence counter resets to zero whenever the heap drains, so long
//! campaigns reusing one engine cannot creep toward overflow and replays
//! restart from an identical sequence stream.

use crate::time::SimTime;

#[inline]
fn pack(at: SimTime, seq: u64) -> u128 {
    ((at.0 as u128) << 64) | seq as u128
}

#[inline]
fn unpack_time(key: u128) -> SimTime {
    SimTime((key >> 64) as u64)
}

/// The engine's pending-event set: a min-heap of `(key, slot)` pairs in
/// structure-of-arrays layout.
#[derive(Debug, Default)]
pub(crate) struct EventHeap {
    keys: Vec<u128>,
    slots: Vec<u32>,
    next_seq: u64,
}

impl EventHeap {
    pub(crate) fn new() -> Self {
        EventHeap::default()
    }

    pub(crate) fn with_capacity(n: usize) -> Self {
        EventHeap {
            keys: Vec::with_capacity(n),
            slots: Vec::with_capacity(n),
            next_seq: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.keys.len()
    }

    /// Drop all entries but keep the allocations (engine reuse).
    pub(crate) fn clear(&mut self) {
        self.keys.clear();
        self.slots.clear();
        self.next_seq = 0;
    }

    /// Insert `slot` to fire at `at`; ties fire in insertion order.
    #[inline]
    pub(crate) fn push(&mut self, at: SimTime, slot: u32) {
        let key = pack(at, self.next_seq);
        self.next_seq += 1;
        self.keys.push(key);
        self.slots.push(slot);
        self.sift_up(self.keys.len() - 1);
    }

    /// Insert `slot` under a caller-packed key (time in the high 64 bits,
    /// an arbitrary tie-breaker in the low 64). The sharded
    /// [`EventCore`](crate::core::EventCore) uses this to order events by a
    /// layout-invariant `(time, domain, sequence)` key instead of the
    /// engine-local insertion sequence; callers must keep coexisting keys
    /// distinct.
    #[inline]
    pub(crate) fn push_keyed(&mut self, key: u128, slot: u32) {
        self.keys.push(key);
        self.slots.push(slot);
        self.sift_up(self.keys.len() - 1);
    }

    /// Time of the earliest entry.
    #[inline]
    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        self.keys.first().map(|&k| unpack_time(k))
    }

    /// Remove and return the earliest entry's `(time, slot)`.
    /// The engine itself always pops through [`EventHeap::pop_within`].
    #[cfg(test)]
    fn pop(&mut self) -> Option<(SimTime, u32)> {
        let key = *self.keys.first()?;
        Some((unpack_time(key), self.remove_root()))
    }

    /// [`EventHeap::pop`], unless the earliest entry is after `horizon` (or
    /// the heap is empty): one root-key load answers both questions, so the
    /// event loop pays no separate peek per iteration.
    #[inline]
    pub(crate) fn pop_within(&mut self, horizon: SimTime) -> Option<(SimTime, u32)> {
        let key = *self.keys.first()?;
        let at = unpack_time(key);
        if at > horizon {
            return None;
        }
        Some((at, self.remove_root()))
    }

    /// Remove the root entry (which must exist), returning its slot.
    #[inline]
    fn remove_root(&mut self) -> u32 {
        let slot = self.slots[0];
        self.keys.swap_remove(0);
        self.slots.swap_remove(0);
        if !self.keys.is_empty() {
            self.sift_down(0);
        } else {
            // Fully drained: restart the sequence stream. Safe because only
            // coexisting entries need distinct sequence numbers.
            self.next_seq = 0;
        }
        slot
    }

    fn sift_up(&mut self, mut i: usize) {
        let key = self.keys[i];
        let slot = self.slots[i];
        while i > 0 {
            let parent = (i - 1) / 4;
            if self.keys[parent] <= key {
                break;
            }
            self.keys[i] = self.keys[parent];
            self.slots[i] = self.slots[parent];
            i = parent;
        }
        self.keys[i] = key;
        self.slots[i] = slot;
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.keys.len();
        let key = self.keys[i];
        let slot = self.slots[i];
        loop {
            let first = 4 * i + 1;
            if first >= n {
                break;
            }
            // min child: a full node uses a 2+1 comparison tournament (the
            // two halves race independently, shortening the dependency
            // chain); a partial node scans. Keys are unique, so ties never
            // arise and `<=`/`<` choices cannot change the result.
            let min_c = if first + 4 <= n {
                let c = &self.keys[first..first + 4];
                let lo = usize::from(c[1] < c[0]);
                let hi = 2 + usize::from(c[3] < c[2]);
                first + if c[hi] < c[lo] { hi } else { lo }
            } else {
                let mut m = first;
                for c in first + 1..n {
                    if self.keys[c] < self.keys[m] {
                        m = c;
                    }
                }
                m
            };
            let min_key = self.keys[min_c];
            if key <= min_key {
                break;
            }
            self.keys[i] = min_key;
            self.slots[i] = self.slots[min_c];
            i = min_c;
        }
        self.keys[i] = key;
        self.slots[i] = slot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_key_order() {
        let mut h = EventHeap::new();
        for (i, t) in [30u64, 10, 20, 10, 5].into_iter().enumerate() {
            h.push(SimTime(t), i as u32);
        }
        let mut order = Vec::new();
        while let Some((t, s)) = h.pop() {
            order.push((t.0, s));
        }
        // time-sorted, ties (the two t=10 entries) in insertion order
        assert_eq!(order, vec![(5, 4), (10, 1), (10, 3), (20, 2), (30, 0)]);
    }

    #[test]
    fn seq_resets_when_drained() {
        let mut h = EventHeap::new();
        h.push(SimTime(1), 0);
        h.push(SimTime(1), 1);
        assert_eq!(h.pop().unwrap().1, 0);
        assert_eq!(h.pop().unwrap().1, 1);
        assert_eq!(h.next_seq, 0, "drain must restart the sequence stream");
        // and ties still break in insertion order after the reset
        h.push(SimTime(2), 7);
        h.push(SimTime(2), 8);
        assert_eq!(h.pop().unwrap().1, 7);
        assert_eq!(h.pop().unwrap().1, 8);
    }

    #[test]
    fn random_interleaving_matches_sort() {
        let mut rng = crate::rng::RngStream::new(0x4EA9);
        for _ in 0..50 {
            let mut h = EventHeap::new();
            let n = 1 + rng.below(200) as usize;
            let mut expect: Vec<(u64, u32)> = Vec::new();
            for i in 0..n {
                let t = rng.below(50);
                h.push(SimTime(t), i as u32);
                expect.push((t, i as u32));
            }
            expect.sort(); // stable order == (time, insertion) order here
            let mut got = Vec::new();
            while let Some((t, s)) = h.pop() {
                got.push((t.0, s));
            }
            assert_eq!(got, expect);
        }
    }
}
