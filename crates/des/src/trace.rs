//! Trace layer — typed spans, counters, and deterministic roll-ups.
//!
//! Every simulation layer in HarborSim (the MPI engines, the deployment
//! pipeline, the batch scheduler, scenario execution) reports *where time
//! goes* through one [`Recorder`]. Downstream views — `CommBreakdown`,
//! deployment-phase numbers, chrome://tracing exports — are derived from
//! the recorded spans instead of being assembled privately per engine.
//!
//! A recorder runs in one of three modes:
//!
//! * **off** ([`Recorder::off`], also [`Default`]) — every emission is a
//!   no-op behind an inlined branch; nothing allocates. Layers that derive
//!   their results from the trace skip attribution entirely in this mode.
//! * **aggregating** ([`Recorder::aggregating`]) — spans fold into a
//!   fixed-size [`Rollup`] (per-category totals, counts, per-track totals)
//!   without storing the spans themselves. This is what the high-level
//!   `run()` entry points use: full attribution, O(1) memory.
//! * **capturing** ([`Recorder::capturing`]) — aggregation plus the full
//!   span list in a [`TraceBuffer`], ordered by emission and keyed by
//!   [`SimTime`]. Deterministic: the same seed yields a bit-identical
//!   buffer.
//!
//! Spans carry a [`SpanCategory`], a static name, a `track` (rank, node,
//! or job id — the "row" in a timeline view), and optional attributes
//! that are only retained when capturing.

use crate::time::{SimDuration, SimTime};

/// What a span measures. Categories are shared across layers so that the
/// analytic and DES engines (and the deployment/batch layers) produce
/// directly comparable traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanCategory {
    /// Solver compute burst (MPI engines).
    Compute,
    /// Halo-exchange communication.
    Halo,
    /// Allreduce communication.
    Allreduce,
    /// Pairwise / point-to-point phase communication.
    Pairs,
    /// Other collectives (bcast, gather, barrier).
    Other,
    /// MPI protocol costs: send/recv overhead, rendezvous handshakes.
    Protocol,
    /// Virtual-network bridge serialization (containerized data path).
    Bridge,
    /// A fabric link busy carrying payload bytes (DES link resources).
    Link,
    /// Image bytes moving: registry pulls, parallel-filesystem reads.
    Pull,
    /// Image format conversion (e.g. the Shifter gateway).
    Convert,
    /// Layer unpacking onto node-local storage.
    Unpack,
    /// Runtime/process start on a node.
    Start,
    /// Batch job waiting in the FIFO queue.
    Queue,
    /// Batch job waiting, then started out of order by EASY backfill.
    Backfill,
    /// Batch job occupying its nodes.
    Launch,
    /// Top-level scenario run.
    Run,
    /// Plan-cache activity in the lab query engine: compiles on a miss,
    /// zero-length hit markers, and waits on another query's in-flight
    /// compile.
    Cache,
}

impl SpanCategory {
    /// Number of categories (array dimension for [`Rollup`]).
    pub const COUNT: usize = 17;

    /// All categories, in declaration order.
    pub const ALL: [SpanCategory; Self::COUNT] = [
        SpanCategory::Compute,
        SpanCategory::Halo,
        SpanCategory::Allreduce,
        SpanCategory::Pairs,
        SpanCategory::Other,
        SpanCategory::Protocol,
        SpanCategory::Bridge,
        SpanCategory::Link,
        SpanCategory::Pull,
        SpanCategory::Convert,
        SpanCategory::Unpack,
        SpanCategory::Start,
        SpanCategory::Queue,
        SpanCategory::Backfill,
        SpanCategory::Launch,
        SpanCategory::Run,
        SpanCategory::Cache,
    ];

    /// Dense index, usable into `[T; SpanCategory::COUNT]`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase label (used as the `cat` field in chrome traces).
    pub fn label(self) -> &'static str {
        match self {
            SpanCategory::Compute => "compute",
            SpanCategory::Halo => "halo",
            SpanCategory::Allreduce => "allreduce",
            SpanCategory::Pairs => "pairs",
            SpanCategory::Other => "other",
            SpanCategory::Protocol => "protocol",
            SpanCategory::Bridge => "bridge",
            SpanCategory::Link => "link",
            SpanCategory::Pull => "pull",
            SpanCategory::Convert => "convert",
            SpanCategory::Unpack => "unpack",
            SpanCategory::Start => "start",
            SpanCategory::Queue => "queue",
            SpanCategory::Backfill => "backfill",
            SpanCategory::Launch => "launch",
            SpanCategory::Run => "run",
            SpanCategory::Cache => "cache",
        }
    }
}

/// A span attribute value. Attributes are only retained in capturing mode.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Free-form text (labels, names).
    Text(String),
    /// Integer quantity (ranks, nodes, bytes).
    Int(u64),
    /// Floating-point quantity.
    Num(f64),
}

/// One recorded interval on a track.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// What kind of time this is.
    pub category: SpanCategory,
    /// Human-readable name (static: the hot path never allocates for it).
    pub name: &'static str,
    /// Timeline row: MPI rank, node index, or job id depending on layer.
    pub track: u32,
    /// Interval start.
    pub start: SimTime,
    /// Interval end (`end >= start`).
    pub end: SimTime,
    /// Optional attributes (empty unless emitted via `span_with` while
    /// capturing).
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl Span {
    /// The span's extent.
    #[inline]
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// An in-memory, deterministic list of spans in emission order.
///
/// Emission order is itself deterministic (the DES kernel breaks time ties
/// by schedule sequence), so two runs with the same seed produce equal
/// buffers — `PartialEq` makes that checkable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceBuffer {
    spans: Vec<Span>,
}

impl TraceBuffer {
    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no spans were captured.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// All spans, in emission order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Spans sorted by `(start, end, track)` — the stable order exporters
    /// use so output does not depend on emission interleaving.
    pub fn sorted_spans(&self) -> Vec<&Span> {
        let mut v: Vec<&Span> = self.spans.iter().collect();
        v.sort_by_key(|s| (s.start, s.end, s.track));
        v
    }

    /// Total duration across all spans of `cat`.
    pub fn total(&self, cat: SpanCategory) -> SimDuration {
        self.spans
            .iter()
            .filter(|s| s.category == cat)
            .map(Span::duration)
            .sum()
    }

    /// Number of spans of `cat`.
    pub fn count(&self, cat: SpanCategory) -> usize {
        self.spans.iter().filter(|s| s.category == cat).count()
    }

    /// Order-insensitive content fingerprint: the wrapping sum of one
    /// FNV-1a hash per span. Two buffers holding the same *multiset* of
    /// spans fingerprint identically no matter the emission order — the
    /// comparison the serial-vs-sharded DES differential needs, since
    /// shard layouts interleave (but never change) the emitted spans.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x1000_0000_01b3;
        fn mix(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= b as u64;
                *h = h.wrapping_mul(PRIME);
            }
        }
        let mut sum = 0u64;
        for s in &self.spans {
            let mut h = OFFSET;
            mix(&mut h, &(s.category.index() as u64).to_le_bytes());
            mix(&mut h, s.name.as_bytes());
            mix(&mut h, &s.track.to_le_bytes());
            mix(&mut h, &s.start.0.to_le_bytes());
            mix(&mut h, &s.end.0.to_le_bytes());
            for (k, v) in &s.attrs {
                mix(&mut h, k.as_bytes());
                match v {
                    AttrValue::Text(t) => mix(&mut h, t.as_bytes()),
                    AttrValue::Int(i) => mix(&mut h, &i.to_le_bytes()),
                    AttrValue::Num(n) => mix(&mut h, &n.to_bits().to_le_bytes()),
                }
            }
            sum = sum.wrapping_add(h);
        }
        sum
    }

    fn push(&mut self, span: Span) {
        self.spans.push(span);
    }
}

/// Aggregated view over emitted spans: per-category totals and counts,
/// per-track totals, and named scalar counters. Durations accumulate in
/// integer nanoseconds, so roll-ups are exactly deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Rollup {
    totals: [u64; SpanCategory::COUNT],
    counts: [u64; SpanCategory::COUNT],
    per_track: Vec<[u64; SpanCategory::COUNT]>,
    tracks: u32,
    counters: Vec<(&'static str, f64)>,
}

impl Rollup {
    /// Total duration across all spans of `cat`.
    pub fn total(&self, cat: SpanCategory) -> SimDuration {
        SimDuration::from_nanos(self.totals[cat.index()])
    }

    /// Number of spans of `cat`.
    pub fn count(&self, cat: SpanCategory) -> u64 {
        self.counts[cat.index()]
    }

    /// Number of *declared* tracks (see [`Recorder::declare_tracks`]).
    /// Emitting on a track does not declare it: auxiliary tracks (e.g. the
    /// DES engine's per-node bridge tracks above the rank tracks) must not
    /// widen the [`Rollup::mean_per_track`] denominator.
    pub fn tracks(&self) -> u32 {
        self.tracks
    }

    /// Largest per-track total for `cat` — e.g. the critical-path compute
    /// time across MPI ranks.
    pub fn max_track(&self, cat: SpanCategory) -> SimDuration {
        let i = cat.index();
        SimDuration::from_nanos(self.per_track.iter().map(|t| t[i]).max().unwrap_or(0))
    }

    /// Mean per-track total for `cat`, over the *declared* number of
    /// tracks (tracks that never emitted still count in the denominator;
    /// undeclared tracks that did emit do not). With one (or no) declared
    /// track this is exactly [`Rollup::total`].
    pub fn mean_per_track(&self, cat: SpanCategory) -> SimDuration {
        let total = self.totals[cat.index()];
        if self.tracks <= 1 {
            SimDuration::from_nanos(total)
        } else {
            SimDuration::from_secs_f64(total as f64 * 1e-9 / self.tracks as f64)
        }
    }

    /// Value of a named counter (0.0 when never bumped).
    pub fn counter(&self, name: &str) -> f64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    }

    /// All counters, in first-bump order.
    pub fn counters(&self) -> &[(&'static str, f64)] {
        &self.counters
    }

    fn add_span(&mut self, cat: SpanCategory, track: u32, dur_ns: u64) {
        let i = cat.index();
        self.totals[i] += dur_ns;
        self.counts[i] += 1;
        let t = track as usize;
        if t >= self.per_track.len() {
            self.per_track.resize(t + 1, [0; SpanCategory::COUNT]);
        }
        self.per_track[t][i] += dur_ns;
    }

    fn bump(&mut self, name: &'static str, delta: f64) {
        if let Some(slot) = self.counters.iter_mut().find(|(n, _)| *n == name) {
            slot.1 += delta;
        } else {
            self.counters.push((name, delta));
        }
    }

    fn merge(&mut self, other: &Rollup) {
        for i in 0..SpanCategory::COUNT {
            self.totals[i] += other.totals[i];
            self.counts[i] += other.counts[i];
        }
        if self.per_track.len() < other.per_track.len() {
            self.per_track
                .resize(other.per_track.len(), [0; SpanCategory::COUNT]);
        }
        for (t, row) in other.per_track.iter().enumerate() {
            for (i, v) in row.iter().enumerate() {
                self.per_track[t][i] += v;
            }
        }
        self.tracks = self.tracks.max(other.tracks);
        for (name, v) in &other.counters {
            self.bump(name, *v);
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Mode {
    #[default]
    Off,
    Aggregate,
    Capture,
}

/// The instrumentation sink every simulation layer emits through.
///
/// The default recorder is **off** — a zero-cost no-op — so layers that do
/// not care about attribution pay one predictable branch per would-be
/// span. See the [module docs](self) for the three modes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Recorder {
    mode: Mode,
    rollup: Rollup,
    buffer: TraceBuffer,
}

impl Recorder {
    /// Disabled recorder: every emission is a no-op. This is [`Default`].
    pub fn off() -> Recorder {
        Recorder::default()
    }

    /// Aggregate spans into a [`Rollup`] without storing them.
    pub fn aggregating() -> Recorder {
        Recorder {
            mode: Mode::Aggregate,
            ..Recorder::default()
        }
    }

    /// Aggregate *and* keep every span in a [`TraceBuffer`].
    pub fn capturing() -> Recorder {
        Recorder {
            mode: Mode::Capture,
            ..Recorder::default()
        }
    }

    /// A fresh recorder in the same mode as `other`. Layers use this to
    /// build a local, initially-empty recorder, derive their own results
    /// from its roll-up, then [`merge`](Recorder::merge) it back into the
    /// caller's.
    pub fn like(other: &Recorder) -> Recorder {
        Recorder {
            mode: other.mode,
            ..Recorder::default()
        }
    }

    #[inline]
    fn mode(&self) -> Mode {
        self.mode
    }

    /// True unless the recorder is off.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.mode() != Mode::Off
    }

    /// True when spans are being stored, not just aggregated.
    #[inline]
    pub fn is_capturing(&self) -> bool {
        self.mode() == Mode::Capture
    }

    /// Declare that tracks `0..n` exist, whether or not they emit. This
    /// fixes the denominator of [`Rollup::mean_per_track`] — e.g. the DES
    /// MPI engine declares one track per rank.
    pub fn declare_tracks(&mut self, n: u32) {
        if self.is_enabled() {
            self.rollup.tracks = self.rollup.tracks.max(n);
        }
    }

    /// Record a span covering `[start, end]` on `track`.
    #[inline]
    pub fn span(
        &mut self,
        cat: SpanCategory,
        name: &'static str,
        track: u32,
        start: SimTime,
        end: SimTime,
    ) {
        if self.mode() == Mode::Off {
            return;
        }
        self.emit(cat, name, track, start, end, Vec::new());
    }

    /// Record a span with attributes. The attributes are retained only
    /// when capturing; aggregation ignores them.
    #[inline]
    pub fn span_with(
        &mut self,
        cat: SpanCategory,
        name: &'static str,
        track: u32,
        start: SimTime,
        end: SimTime,
        attrs: Vec<(&'static str, AttrValue)>,
    ) {
        if self.mode() == Mode::Off {
            return;
        }
        self.emit(cat, name, track, start, end, attrs);
    }

    fn emit(
        &mut self,
        cat: SpanCategory,
        name: &'static str,
        track: u32,
        start: SimTime,
        end: SimTime,
        attrs: Vec<(&'static str, AttrValue)>,
    ) {
        debug_assert!(end >= start, "span {name} ends before it starts");
        self.rollup.add_span(cat, track, (end - start).as_nanos());
        if self.mode() == Mode::Capture {
            self.buffer.push(Span {
                category: cat,
                name,
                track,
                start,
                end,
                attrs,
            });
        }
    }

    /// Accumulate `delta` onto the named counter.
    #[inline]
    pub fn counter(&mut self, name: &'static str, delta: f64) {
        if self.mode() == Mode::Off {
            return;
        }
        self.rollup.bump(name, delta);
    }

    /// The aggregated view of everything recorded so far.
    pub fn rollup(&self) -> &Rollup {
        &self.rollup
    }

    /// The captured spans (empty unless capturing).
    pub fn buffer(&self) -> &TraceBuffer {
        &self.buffer
    }

    /// Take ownership of the captured spans, leaving the buffer empty.
    pub fn take_buffer(&mut self) -> TraceBuffer {
        std::mem::take(&mut self.buffer)
    }

    /// Replay a previously captured buffer into this recorder (respecting
    /// this recorder's own mode). Used to splice e.g. a compile-time
    /// deployment trace into a run-time trace.
    pub fn absorb(&mut self, buf: &TraceBuffer) {
        if !self.is_enabled() {
            return;
        }
        for s in buf.spans() {
            self.emit(s.category, s.name, s.track, s.start, s.end, s.attrs.clone());
        }
    }

    /// Fold another recorder's roll-up and (when both capture) spans into
    /// this one. Completes the local-recorder pattern: layers record into
    /// a [`Recorder::like`] sibling and merge it back when done.
    pub fn merge(&mut self, other: Recorder) {
        if !self.is_enabled() {
            return;
        }
        self.rollup.merge(&other.rollup);
        if self.is_capturing() {
            self.buffer.spans.extend(other.buffer.spans);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_nanos(ns)
    }

    #[test]
    fn off_recorder_records_nothing() {
        let mut r = Recorder::off();
        r.declare_tracks(4);
        r.span(SpanCategory::Compute, "c", 0, t(0), t(100));
        r.counter("bytes", 10.0);
        assert!(!r.is_enabled());
        assert_eq!(r.rollup().total(SpanCategory::Compute), SimDuration::ZERO);
        assert_eq!(r.rollup().counter("bytes"), 0.0);
        assert!(r.buffer().is_empty());
        assert_eq!(Recorder::default(), Recorder::off().clone());
    }

    #[test]
    fn aggregating_rolls_up_without_storing() {
        let mut r = Recorder::aggregating();
        r.declare_tracks(2);
        r.span(SpanCategory::Halo, "h", 0, t(0), t(100));
        r.span(SpanCategory::Halo, "h", 1, t(50), t(250));
        assert!(r.is_enabled() && !r.is_capturing());
        assert!(r.buffer().is_empty());
        let ru = r.rollup();
        assert_eq!(ru.total(SpanCategory::Halo).as_nanos(), 300);
        assert_eq!(ru.count(SpanCategory::Halo), 2);
        assert_eq!(ru.max_track(SpanCategory::Halo).as_nanos(), 200);
        assert_eq!(ru.mean_per_track(SpanCategory::Halo).as_nanos(), 150);
    }

    #[test]
    fn single_track_mean_is_exact_total() {
        let mut r = Recorder::aggregating();
        r.span(SpanCategory::Compute, "c", 0, t(0), t(7));
        assert_eq!(
            r.rollup().mean_per_track(SpanCategory::Compute).as_nanos(),
            7
        );
    }

    #[test]
    fn capture_stores_spans_in_emission_order() {
        let mut r = Recorder::capturing();
        r.span(SpanCategory::Compute, "c", 1, t(100), t(200));
        r.span_with(
            SpanCategory::Run,
            "run",
            0,
            t(0),
            t(300),
            vec![("cluster", AttrValue::Text("lenox".into()))],
        );
        assert_eq!(r.buffer().len(), 2);
        assert_eq!(r.buffer().spans()[0].name, "c");
        assert_eq!(r.buffer().spans()[1].attrs.len(), 1);
        let sorted = r.buffer().sorted_spans();
        assert_eq!(sorted[0].name, "run");
        assert_eq!(r.buffer().total(SpanCategory::Run).as_nanos(), 300);
        assert_eq!(r.buffer().count(SpanCategory::Compute), 1);
    }

    #[test]
    fn counters_accumulate_in_order() {
        let mut r = Recorder::aggregating();
        r.counter("bytes_pulled", 100.0);
        r.counter("bytes_from_pfs", 5.0);
        r.counter("bytes_pulled", 20.0);
        assert_eq!(r.rollup().counter("bytes_pulled"), 120.0);
        assert_eq!(r.rollup().counters()[0].0, "bytes_pulled");
        assert_eq!(r.rollup().counters().len(), 2);
    }

    #[test]
    fn merge_folds_rollup_tracks_and_spans() {
        let mut a = Recorder::capturing();
        a.span(SpanCategory::Halo, "h", 0, t(0), t(10));
        let mut b = Recorder::like(&a);
        assert!(b.is_capturing());
        b.declare_tracks(8);
        b.span(SpanCategory::Halo, "h", 2, t(0), t(30));
        b.counter("msgs", 3.0);
        a.merge(b);
        assert_eq!(a.rollup().total(SpanCategory::Halo).as_nanos(), 40);
        assert_eq!(a.rollup().tracks(), 8);
        assert_eq!(a.rollup().counter("msgs"), 3.0);
        assert_eq!(a.buffer().len(), 2);
    }

    #[test]
    fn absorb_replays_a_buffer() {
        let mut src = Recorder::capturing();
        src.span(SpanCategory::Pull, "layer", 3, t(0), t(50));
        let buf = src.take_buffer();
        assert!(src.buffer().is_empty());

        let mut agg = Recorder::aggregating();
        agg.absorb(&buf);
        assert_eq!(agg.rollup().total(SpanCategory::Pull).as_nanos(), 50);
        assert!(agg.buffer().is_empty());

        let mut cap = Recorder::capturing();
        cap.absorb(&buf);
        assert_eq!(cap.buffer().len(), 1);

        let mut off = Recorder::off();
        off.absorb(&buf);
        assert_eq!(off.rollup().count(SpanCategory::Pull), 0);
    }

    #[test]
    fn category_labels_and_indices_are_consistent() {
        for (i, cat) in SpanCategory::ALL.iter().enumerate() {
            assert_eq!(cat.index(), i);
            assert!(!cat.label().is_empty());
        }
    }

    #[test]
    fn fingerprint_ignores_order_but_not_content() {
        let mut a = Recorder::capturing();
        a.span(SpanCategory::Compute, "burst", 0, t(0), t(10));
        a.span(SpanCategory::Halo, "wait", 1, t(10), t(30));
        let mut b = Recorder::capturing();
        b.span(SpanCategory::Halo, "wait", 1, t(10), t(30));
        b.span(SpanCategory::Compute, "burst", 0, t(0), t(10));
        assert_eq!(
            a.buffer().fingerprint(),
            b.buffer().fingerprint(),
            "emission order must not matter"
        );
        let mut c = Recorder::capturing();
        c.span(SpanCategory::Compute, "burst", 0, t(0), t(10));
        c.span(SpanCategory::Halo, "wait", 2, t(10), t(30)); // track differs
        assert_ne!(a.buffer().fingerprint(), c.buffer().fingerprint());
        assert_eq!(Recorder::capturing().buffer().fingerprint(), 0);
    }
}
