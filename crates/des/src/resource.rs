//! FIFO server pools with finite capacity.
//!
//! A [`Resource`] models anything that serves at most `capacity` users at a
//! time and queues the rest in arrival order: a node's NIC send engine, a
//! registry's connection limit, a filesystem's metadata server, the Docker
//! daemon's single build lock.
//!
//! Continuations are scheduled on the engine with zero delay when granted, so
//! grants interleave deterministically with other same-instant events.

use crate::engine::{Engine, Event};
use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

type Cont<S> = Box<dyn FnOnce(&mut Engine<S>, &mut S)>;

/// A finite-capacity FIFO resource whose continuations are *typed events*
/// rather than boxed closures.
///
/// Behaviourally identical to [`Resource`] — grants are zero-delay events,
/// waiters are served in arrival order, the same statistics are kept — but
/// the waiter queue holds plain values of the caller's event type `E`, so
/// steady-state acquire/release traffic allocates nothing once the queue's
/// ring buffer has grown. Used by the message-level MPI engine, whose link,
/// pipe, and bridge resources sit on the hot path.
pub struct TypedResource<E> {
    capacity: u32,
    in_use: u32,
    waiters: VecDeque<E>,
    // statistics
    grants: u64,
    max_queue: usize,
    busy_integral_ns: u128,
    last_change: SimTime,
}

impl<E> TypedResource<E> {
    /// A resource with `capacity` simultaneous servers.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "resource capacity must be positive");
        TypedResource {
            capacity,
            in_use: 0,
            waiters: VecDeque::new(),
            grants: 0,
            max_queue: 0,
            busy_integral_ns: 0,
            last_change: SimTime::ZERO,
        }
    }

    /// Return the resource to its initial state with `capacity` servers,
    /// keeping the waiter queue's allocation (scratch-pool reuse).
    pub fn reset(&mut self, capacity: u32) {
        assert!(capacity > 0, "resource capacity must be positive");
        self.capacity = capacity;
        self.in_use = 0;
        self.waiters.clear();
        self.grants = 0;
        self.max_queue = 0;
        self.busy_integral_ns = 0;
        self.last_change = SimTime::ZERO;
    }

    /// Request one server; `cont` fires (via a zero-delay event) as soon as
    /// a server is available, in FIFO order.
    pub fn acquire<S>(&mut self, eng: &mut Engine<S, E>, cont: E)
    where
        E: Event<S>,
    {
        if self.in_use < self.capacity {
            self.account(eng.now());
            self.in_use += 1;
            self.grants += 1;
            eng.schedule_event(SimDuration::ZERO, cont);
        } else {
            self.waiters.push_back(cont);
            self.max_queue = self.max_queue.max(self.waiters.len());
        }
    }

    /// Return one server; the oldest waiter (if any) is granted immediately.
    ///
    /// # Panics
    /// Panics if no server is currently held.
    pub fn release<S>(&mut self, eng: &mut Engine<S, E>)
    where
        E: Event<S>,
    {
        assert!(self.in_use > 0, "release without matching acquire");
        self.account(eng.now());
        if let Some(cont) = self.waiters.pop_front() {
            // hand the server straight to the next waiter
            self.grants += 1;
            eng.schedule_event(SimDuration::ZERO, cont);
        } else {
            self.in_use -= 1;
        }
    }

    fn account(&mut self, now: SimTime) {
        let dt = now.since(self.last_change).as_nanos() as u128;
        self.busy_integral_ns += dt * self.in_use as u128;
        self.last_change = now;
    }

    /// Servers currently held.
    pub fn in_use(&self) -> u32 {
        self.in_use
    }

    /// Requests currently queued.
    pub fn queue_len(&self) -> usize {
        self.waiters.len()
    }

    /// Total grants issued so far.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Longest queue observed.
    pub fn max_queue(&self) -> usize {
        self.max_queue
    }

    /// Mean number of busy servers over `[0, now]`.
    pub fn mean_utilization(&mut self, now: SimTime) -> f64 {
        self.account(now);
        if now == SimTime::ZERO {
            return 0.0;
        }
        self.busy_integral_ns as f64 / now.as_nanos() as f64
    }
}

/// A finite-capacity FIFO resource decoupled from any engine.
///
/// The shard-aware variant of [`TypedResource`]: `acquire`/`release` return
/// the continuation to grant instead of scheduling it, so the same resource
/// works inside a per-shard [`EventCore`](crate::EventCore) loop where
/// scheduling needs a shard-assigned event key the resource cannot know.
/// `Some(cont)` means the caller must schedule `cont` now with zero delay
/// (preserving the deterministic same-instant interleaving the engine-bound
/// resources have); `None` from `acquire` means the request was queued.
#[derive(Debug)]
pub struct CoreResource<E> {
    capacity: u32,
    in_use: u32,
    waiters: VecDeque<E>,
}

impl<E> CoreResource<E> {
    /// A resource with `capacity` simultaneous servers.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "resource capacity must be positive");
        CoreResource {
            capacity,
            in_use: 0,
            waiters: VecDeque::new(),
        }
    }

    /// Return the resource to its initial state with `capacity` servers,
    /// keeping the waiter queue's allocation (scratch-pool reuse).
    pub fn reset(&mut self, capacity: u32) {
        assert!(capacity > 0, "resource capacity must be positive");
        self.capacity = capacity;
        self.in_use = 0;
        self.waiters.clear();
    }

    /// Request one server. `Some(cont)` hands the continuation back for
    /// the caller to schedule immediately (a server was free); `None`
    /// means it was queued and will come back out of a later `release`.
    #[inline]
    #[must_use = "a granted continuation must be scheduled"]
    pub fn acquire(&mut self, cont: E) -> Option<E> {
        if self.in_use < self.capacity {
            self.in_use += 1;
            Some(cont)
        } else {
            self.waiters.push_back(cont);
            None
        }
    }

    /// Return one server. `Some(cont)` is the oldest waiter, now granted,
    /// for the caller to schedule immediately.
    ///
    /// # Panics
    /// Panics if no server is currently held.
    #[inline]
    #[must_use = "a granted continuation must be scheduled"]
    pub fn release(&mut self) -> Option<E> {
        assert!(self.in_use > 0, "release without matching acquire");
        let granted = self.waiters.pop_front();
        if granted.is_none() {
            self.in_use -= 1;
        }
        granted
    }

    /// Servers currently held.
    pub fn in_use(&self) -> u32 {
        self.in_use
    }

    /// Requests currently queued.
    pub fn queue_len(&self) -> usize {
        self.waiters.len()
    }
}

/// A finite-capacity FIFO resource.
///
/// The resource does not know which state field it lives in; callers hold it
/// inside their simulation state `S` and pass the engine explicitly:
///
/// ```
/// use harborsim_des::{Engine, Resource, SimDuration};
///
/// struct State { nic: Resource<State>, done: u32 }
/// let mut eng: Engine<State> = Engine::new();
/// let mut state = State { nic: Resource::new(1), done: 0 };
/// for _ in 0..3 {
///     eng.schedule(SimDuration::ZERO, |eng, st| {
///         st.nic.acquire(eng, |eng, st| {
///             // hold the NIC for 1ms, then release
///             eng.schedule(SimDuration::from_millis(1), |eng, st| {
///                 st.done += 1;
///                 st.nic.release(eng);
///             });
///         });
///     });
/// }
/// eng.run(&mut state);
/// assert_eq!(state.done, 3);
/// assert_eq!(eng.now(), harborsim_des::SimTime::ZERO + SimDuration::from_millis(3));
/// ```
pub struct Resource<S> {
    capacity: u32,
    in_use: u32,
    waiters: VecDeque<Cont<S>>,
    // statistics
    grants: u64,
    max_queue: usize,
    busy_integral_ns: u128,
    last_change: SimTime,
}

impl<S: 'static> Resource<S> {
    /// A resource with `capacity` simultaneous servers.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "resource capacity must be positive");
        Resource {
            capacity,
            in_use: 0,
            waiters: VecDeque::new(),
            grants: 0,
            max_queue: 0,
            busy_integral_ns: 0,
            last_change: SimTime::ZERO,
        }
    }

    /// Request one server; `cont` runs (via a zero-delay event) as soon as a
    /// server is available, in FIFO order.
    pub fn acquire<F>(&mut self, eng: &mut Engine<S>, cont: F)
    where
        F: FnOnce(&mut Engine<S>, &mut S) + 'static,
    {
        if self.in_use < self.capacity {
            self.account(eng.now());
            self.in_use += 1;
            self.grants += 1;
            eng.schedule(SimDuration::ZERO, cont);
        } else {
            self.waiters.push_back(Box::new(cont));
            self.max_queue = self.max_queue.max(self.waiters.len());
        }
    }

    /// Return one server; the oldest waiter (if any) is granted immediately.
    ///
    /// # Panics
    /// Panics if no server is currently held.
    pub fn release(&mut self, eng: &mut Engine<S>) {
        assert!(self.in_use > 0, "release without matching acquire");
        self.account(eng.now());
        if let Some(cont) = self.waiters.pop_front() {
            // hand the server straight to the next waiter
            self.grants += 1;
            eng.schedule(SimDuration::ZERO, cont);
        } else {
            self.in_use -= 1;
        }
    }

    fn account(&mut self, now: SimTime) {
        let dt = now.since(self.last_change).as_nanos() as u128;
        self.busy_integral_ns += dt * self.in_use as u128;
        self.last_change = now;
    }

    /// Servers currently held.
    pub fn in_use(&self) -> u32 {
        self.in_use
    }

    /// Requests currently queued.
    pub fn queue_len(&self) -> usize {
        self.waiters.len()
    }

    /// Total grants issued so far.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Longest queue observed.
    pub fn max_queue(&self) -> usize {
        self.max_queue
    }

    /// Mean number of busy servers over `[0, now]`.
    pub fn mean_utilization(&mut self, now: SimTime) -> f64 {
        self.account(now);
        if now == SimTime::ZERO {
            return 0.0;
        }
        self.busy_integral_ns as f64 / now.as_nanos() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct St {
        res: Resource<St>,
        order: Vec<u32>,
        finish_times: Vec<f64>,
    }

    fn job(eng: &mut Engine<St>, idx: u32, hold: SimDuration) {
        eng.schedule(SimDuration::ZERO, move |eng, st: &mut St| {
            st.res.acquire(eng, move |eng, _st| {
                eng.schedule(hold, move |eng, st| {
                    st.order.push(idx);
                    st.finish_times.push(eng.now().as_secs_f64());
                    st.res.release(eng);
                });
            });
        });
    }

    #[test]
    fn fifo_order_preserved() {
        let mut eng = Engine::new();
        let mut st = St {
            res: Resource::new(1),
            order: Vec::new(),
            finish_times: Vec::new(),
        };
        for i in 0..5 {
            job(&mut eng, i, SimDuration::from_secs(1));
        }
        eng.run(&mut st);
        assert_eq!(st.order, vec![0, 1, 2, 3, 4]);
        assert_eq!(st.finish_times, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(st.res.grants(), 5);
        assert_eq!(st.res.max_queue(), 4);
    }

    #[test]
    fn capacity_two_runs_pairs_concurrently() {
        let mut eng = Engine::new();
        let mut st = St {
            res: Resource::new(2),
            order: Vec::new(),
            finish_times: Vec::new(),
        };
        for i in 0..4 {
            job(&mut eng, i, SimDuration::from_secs(1));
        }
        eng.run(&mut st);
        // pairs (0,1) finish at t=1, pairs (2,3) at t=2
        assert_eq!(st.finish_times, vec![1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn utilization_accounting() {
        let mut eng = Engine::new();
        let mut st = St {
            res: Resource::new(1),
            order: Vec::new(),
            finish_times: Vec::new(),
        };
        job(&mut eng, 0, SimDuration::from_secs(1));
        eng.run(&mut st);
        // hold 1s, then idle: at t=2s utilization should be 0.5
        let now = eng.now() + SimDuration::from_secs(1);
        let util = st.res.mean_utilization(now);
        assert!((util - 0.5).abs() < 1e-9, "util={util}");
    }

    #[test]
    #[should_panic(expected = "release without matching acquire")]
    fn release_without_acquire_panics() {
        let mut eng: Engine<St> = Engine::new();
        let mut res: Resource<St> = Resource::new(1);
        res.release(&mut eng);
    }

    #[test]
    fn core_resource_fifo_and_reset() {
        let mut r: CoreResource<u32> = CoreResource::new(2);
        assert_eq!(r.acquire(0), Some(0));
        assert_eq!(r.acquire(1), Some(1));
        assert_eq!(r.acquire(2), None, "at capacity: queued");
        assert_eq!(r.acquire(3), None);
        assert_eq!(r.queue_len(), 2);
        assert_eq!(r.in_use(), 2);
        // releases grant the waiters oldest-first, keeping servers busy
        assert_eq!(r.release(), Some(2));
        assert_eq!(r.in_use(), 2);
        assert_eq!(r.release(), Some(3));
        assert_eq!(r.release(), None);
        assert_eq!(r.in_use(), 1);
        r.reset(1);
        assert_eq!(r.in_use(), 0);
        assert_eq!(r.queue_len(), 0);
        assert_eq!(r.acquire(9), Some(9));
        assert_eq!(r.acquire(10), None, "reset capacity applies");
    }

    #[test]
    #[should_panic(expected = "release without matching acquire")]
    fn core_resource_release_without_acquire_panics() {
        let mut r: CoreResource<u32> = CoreResource::new(1);
        let _ = r.release();
    }
}
