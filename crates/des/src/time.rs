//! Simulated time: nanosecond-resolution instants and durations.
//!
//! `u64` nanoseconds give ~584 years of simulated range, far beyond any
//! HarborSim experiment, while keeping ordering, hashing and arithmetic cheap
//! and exact (no floating-point clock drift).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant on the simulated clock, in nanoseconds since the
/// start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinite" horizon).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since the start of the simulation.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the simulation, as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is later than `self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier <= self, "SimTime::since: earlier > self");
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating addition of a duration (clamps at `SimTime::MAX`).
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Build a duration from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Build a duration from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Build a duration from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Build a duration from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// Build a duration from fractional seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero — callers
    /// feed this with model outputs that are occasionally `-0.0` or a tiny
    /// negative value from floating-point cancellation.
    #[inline]
    pub fn from_secs_f64(s: f64) -> SimDuration {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Build a duration from fractional microseconds (common unit for
    /// network latencies). Clamps like [`SimDuration::from_secs_f64`].
    #[inline]
    pub fn from_micros_f64(us: f64) -> SimDuration {
        SimDuration::from_secs_f64(us * 1e-6)
    }

    /// Whole nanoseconds in this duration.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// This duration in fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// Scale the duration by a non-negative factor, rounding to the nearest
    /// nanosecond.
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }

    /// Saturating duration addition.
    #[inline]
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimDuration) -> SimDuration {
        debug_assert!(other <= self, "SimDuration subtraction underflow");
        SimDuration(self.0 - other.0)
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3000));
        assert_eq!(SimDuration::from_micros(5), SimDuration::from_nanos(5000));
    }

    #[test]
    fn float_roundtrip() {
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_nanos(), 1_500_000_000);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-0.0), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        let u = t + SimDuration::from_millis(500);
        assert_eq!(u.since(t), SimDuration::from_millis(500));
        assert_eq!(u - SimTime::ZERO, SimDuration::from_millis(1500));
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.00us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.00ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(2).mul_f64(0.25);
        assert_eq!(d, SimDuration::from_millis(500));
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn saturating_add_clamps() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
    }
}
