//! The pending-event set: a binary heap ordered by `(time, sequence)`.
//!
//! The sequence number breaks ties between simultaneous events in scheduling
//! order, which makes the whole simulation deterministic: two events scheduled
//! for the same instant always fire in the order `schedule` was called.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled entry: fire `payload` at `at`, with `seq` breaking ties.
pub struct Scheduled<T> {
    pub at: SimTime,
    pub seq: u64,
    pub payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Scheduled<T> {
    // Reversed so that `BinaryHeap` (a max-heap) pops the *earliest* entry.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-queue of scheduled entries.
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Insert `payload` to fire at absolute time `at`; returns the sequence
    /// number assigned to the entry.
    pub fn push(&mut self, at: SimTime, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
        seq
    }

    /// Remove and return the earliest entry.
    pub fn pop(&mut self) -> Option<Scheduled<T>> {
        self.heap.pop()
    }

    /// The time of the earliest pending entry.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|s| s.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_fire_in_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|s| s.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), ());
        q.push(SimTime(2), ());
        assert_eq!(q.peek_time(), Some(SimTime(2)));
        assert_eq!(q.pop().unwrap().at, SimTime(2));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
