//! A binary-heap event queue ordered by `(time, sequence)`.
//!
//! The sequence number breaks ties between simultaneous events in scheduling
//! order, which makes the whole simulation deterministic: two events scheduled
//! for the same instant always fire in the order `schedule` was called.
//!
//! This is the original pending-event set of the [`Engine`](crate::Engine);
//! the engine itself now runs on the arena + 4-ary heap representation, and
//! this queue is retained as the independently-simple *reference
//! implementation* that differential tests (and the old-vs-new churn bench)
//! compare against.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled entry: fire `payload` at `at`, with `seq` breaking ties.
pub struct Scheduled<T> {
    pub at: SimTime,
    pub seq: u64,
    pub payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Scheduled<T> {
    // Reversed so that `BinaryHeap` (a max-heap) pops the *earliest* entry.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-queue of scheduled entries.
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Insert `payload` to fire at absolute time `at`; returns the sequence
    /// number assigned to the entry.
    pub fn push(&mut self, at: SimTime, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
        seq
    }

    /// Remove and return the earliest entry.
    ///
    /// When the pop fully drains the queue, the sequence counter restarts
    /// from zero: only coexisting entries need distinct sequence numbers,
    /// so long campaigns reusing one queue cannot creep toward overflow and
    /// replays restart from an identical sequence stream.
    pub fn pop(&mut self) -> Option<Scheduled<T>> {
        let popped = self.heap.pop();
        if popped.is_some() && self.heap.is_empty() {
            self.next_seq = 0;
        }
        popped
    }

    /// The time of the earliest pending entry.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|s| s.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_fire_in_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|s| s.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn seq_counter_resets_when_queue_drains() {
        let mut q = EventQueue::new();
        assert_eq!(q.push(SimTime(1), "a"), 0);
        assert_eq!(q.push(SimTime(2), "b"), 1);
        q.pop();
        assert_eq!(q.push(SimTime(3), "c"), 2, "non-empty: counter keeps going");
        q.pop();
        q.pop();
        assert_eq!(q.push(SimTime(4), "d"), 0, "drained: counter restarts");
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), ());
        q.push(SimTime(2), ());
        assert_eq!(q.peek_time(), Some(SimTime(2)));
        assert_eq!(q.pop().unwrap().at, SimTime(2));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
