//! The typed event loop is allocation-free at steady state.
//!
//! A counting global allocator wraps `System`; after one warm-up round has
//! grown the engine's heap and arena to the workload's high-water mark,
//! sustained schedule/cancel/pop churn must perform **exactly zero** heap
//! allocations — the free-list slab and the flat 4-ary heap reuse their
//! storage, and cancellation is a generation bump, not a hash insert.

use harborsim_des::{Engine, Event, SimDuration};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates directly to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[derive(Clone, Copy)]
struct Tick;

impl Event<u64> for Tick {
    fn fire(self, _eng: &mut Engine<u64, Tick>, fired: &mut u64) {
        *fired += 1;
    }
}

/// One churn round: schedule `batch` cancellable events at staggered
/// times, cancel every third, drain.
fn churn_round(
    eng: &mut Engine<u64, Tick>,
    ids: &mut Vec<harborsim_des::EventId>,
    fired: &mut u64,
) {
    ids.clear();
    for i in 0..ids.capacity() as u64 {
        ids.push(eng.schedule_cancellable_event(SimDuration::from_nanos(997 * i % 1000), Tick));
    }
    for id in ids.iter().skip(1).step_by(3) {
        eng.cancel(*id);
    }
    eng.run(fired);
}

#[test]
fn typed_event_churn_allocates_exactly_zero_after_warmup() {
    const BATCH: usize = 512;
    let mut eng: Engine<u64, Tick> = Engine::new();
    let mut ids = Vec::with_capacity(BATCH);
    let mut fired = 0u64;
    // warm-up: grows the heap, arena, and id vector to the high-water mark
    churn_round(&mut eng, &mut ids, &mut fired);
    let before = allocations();
    for _ in 0..100 {
        churn_round(&mut eng, &mut ids, &mut fired);
    }
    let during = allocations() - before;
    assert!(fired > 0);
    assert_eq!(
        during, 0,
        "steady-state typed churn must not allocate (saw {during} allocations in 100 rounds)"
    );
}

#[test]
fn boxed_fallback_still_allocates_per_event() {
    // the convenience API trades a per-event Box for ergonomics; assert the
    // counter actually sees it so the zero above is known to be meaningful
    let mut eng: Engine<u64> = Engine::new();
    let mut fired = 0u64;
    let step = 1u64; // captured, so each closure is a real heap payload
    eng.schedule(SimDuration::from_nanos(1), move |_, f| *f += step);
    eng.run(&mut fired);
    let before = allocations();
    for _ in 0..10 {
        eng.schedule(SimDuration::from_nanos(1), move |_, f| *f += step);
    }
    eng.run(&mut fired);
    assert!(
        allocations() - before >= 10,
        "each boxed event carries a heap allocation"
    );
}
