//! Property-style tests of the DES kernel, driven by deterministic
//! [`RngStream`] case generation (seeded, reproducible, dependency-free).

use harborsim_des::{Engine, FluidLink, Resource, RngStream, SimDuration};

/// Deterministic replacement for proptest case generation.
fn cases(label: &str, n: u64) -> impl Iterator<Item = RngStream> {
    let root = RngStream::new(0xDE5_0001).derive(label);
    (0..n).map(move |i| root.derive_idx(i))
}

fn random_vec(rng: &mut RngStream, max_len: u64, max_val: u64) -> Vec<u64> {
    let len = 1 + rng.below(max_len);
    (0..len).map(|_| rng.below(max_val)).collect()
}

/// Events always execute in (time, schedule-order) sequence, whatever
/// order they were submitted in.
#[test]
fn event_order_is_time_then_fifo() {
    for mut rng in cases("event-order", 64) {
        let delays = random_vec(&mut rng, 200, 1_000);
        let mut eng: Engine<Vec<(u64, usize)>> = Engine::new();
        for (i, &d) in delays.iter().enumerate() {
            eng.schedule(
                SimDuration::from_nanos(d),
                move |eng, log: &mut Vec<(u64, usize)>| {
                    log.push((eng.now().as_nanos(), i));
                },
            );
        }
        let mut log = Vec::new();
        eng.run(&mut log);
        assert_eq!(log.len(), delays.len());
        for w in log.windows(2) {
            assert!(w[0].0 <= w[1].0, "time must be monotone");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "ties break by schedule order");
            }
        }
    }
}

/// A FIFO resource of capacity c serving n unit jobs of duration d
/// finishes at exactly ceil(n/c)*d.
#[test]
fn resource_makespan_exact() {
    for mut rng in cases("resource-makespan", 64) {
        let jobs = 1 + rng.below(59) as u32;
        let capacity = 1 + rng.below(7) as u32;
        struct St {
            res: Resource<St>,
            done: u32,
        }
        let mut eng: Engine<St> = Engine::new();
        let mut st = St {
            res: Resource::new(capacity),
            done: 0,
        };
        let hold = SimDuration::from_millis(10);
        for _ in 0..jobs {
            eng.schedule(SimDuration::ZERO, move |eng, st: &mut St| {
                st.res.acquire(eng, move |eng, _| {
                    eng.schedule(hold, move |eng, st: &mut St| {
                        st.done += 1;
                        st.res.release(eng);
                    });
                });
            });
        }
        eng.run(&mut st);
        assert_eq!(st.done, jobs);
        let waves = jobs.div_ceil(capacity) as u64;
        assert_eq!(eng.now().as_nanos(), waves * 10_000_000);
    }
}

/// Fair-share links conserve bytes and never exceed capacity.
#[test]
fn fluid_link_conserves() {
    for mut rng in cases("fluid-conserves", 64) {
        let n = 1 + rng.below(39);
        let sizes: Vec<f64> = (0..n).map(|_| rng.uniform_range(1.0, 1e6)).collect();
        struct St {
            link: FluidLink<St>,
            done: usize,
        }
        fn acc(s: &mut St) -> &mut FluidLink<St> {
            &mut s.link
        }
        let mut eng: Engine<St> = Engine::new();
        let mut st = St {
            link: FluidLink::new(1e6, acc),
            done: 0,
        };
        for (i, &bytes) in sizes.iter().enumerate() {
            eng.schedule(
                SimDuration::from_micros(i as u64 * 37),
                move |eng, st: &mut St| {
                    st.link.start_flow(eng, bytes, |_, st| st.done += 1);
                },
            );
        }
        eng.run(&mut st);
        assert_eq!(st.done, sizes.len());
        let total: f64 = sizes.iter().sum();
        assert!((st.link.bytes_completed() - total).abs() / total < 1e-6);
        // aggregate throughput bounded by capacity
        let makespan = eng.now().as_secs_f64();
        assert!(total / makespan <= 1e6 * (1.0 + 1e-9));
    }
}

/// RNG streams are reproducible and label-derivations independent of
/// consumption order.
#[test]
fn rng_substreams_stable() {
    for mut rng in cases("substreams", 64) {
        let seed = rng.next_u64();
        let len = 1 + rng.below(12) as usize;
        let label: String = (0..len)
            .map(|_| (b'a' + rng.below(26) as u8) as char)
            .collect();
        let root = RngStream::new(seed);
        let mut a = root.derive(&label);
        // consuming the parent's siblings must not perturb `a`
        let mut noise = root.derive("noise");
        let _ = noise.next_u64();
        let mut b = root.derive(&label);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

/// Differential test of the arena + 4-ary-heap engine against the retained
/// reference queue (the original `BinaryHeap` + tombstone-set design):
/// interleaved schedule/cancel/pop sequences must match event-for-event —
/// same labels, same fire times, same pending counts, same clock.
#[test]
fn arena_engine_matches_reference_queue() {
    use harborsim_des::queue::EventQueue;
    use harborsim_des::{EventId, SimTime};
    use std::collections::HashSet;

    for mut rng in cases("differential", 64) {
        // Reference model: the pre-arena engine semantics, spelled out.
        let mut refq: EventQueue<(u64, Option<u64>)> = EventQueue::new();
        let mut ref_cancelled: HashSet<u64> = HashSet::new();
        let mut ref_now = SimTime::ZERO;
        let mut ref_log: Vec<(u64, u64)> = Vec::new();
        let mut next_cid = 0u64;

        // Subject: the production engine.
        let mut eng: Engine<Vec<(u64, u64)>> = Engine::new();
        let mut eng_log: Vec<(u64, u64)> = Vec::new();
        let mut handles: Vec<(u64, EventId)> = Vec::new();

        let ref_pop = |refq: &mut EventQueue<(u64, Option<u64>)>,
                       ref_cancelled: &mut HashSet<u64>,
                       ref_now: &mut SimTime,
                       ref_log: &mut Vec<(u64, u64)>| {
            while let Some(s) = refq.pop() {
                let (label, cid) = s.payload;
                if let Some(c) = cid {
                    if ref_cancelled.remove(&c) {
                        continue; // tombstone
                    }
                }
                *ref_now = s.at;
                ref_log.push((label, s.at.as_nanos()));
                break;
            }
        };

        let steps = 50 + rng.below(150);
        let mut label = 0u64;
        for _ in 0..steps {
            match rng.below(4) {
                0 => {
                    let d = SimDuration::from_nanos(rng.below(1_000));
                    let l = label;
                    label += 1;
                    refq.push(ref_now + d, (l, None));
                    eng.schedule(d, move |e, log: &mut Vec<(u64, u64)>| {
                        log.push((l, e.now().as_nanos()))
                    });
                }
                1 => {
                    let d = SimDuration::from_nanos(rng.below(1_000));
                    let l = label;
                    label += 1;
                    let cid = next_cid;
                    next_cid += 1;
                    refq.push(ref_now + d, (l, Some(cid)));
                    let id = eng.schedule_cancellable(d, move |e, log: &mut Vec<(u64, u64)>| {
                        log.push((l, e.now().as_nanos()))
                    });
                    handles.push((cid, id));
                }
                2 => {
                    // cancel a random handle — possibly one that already
                    // fired or was already cancelled; both must no-op
                    if !handles.is_empty() {
                        let k = rng.below(handles.len() as u64) as usize;
                        let (cid, id) = handles[k];
                        ref_cancelled.insert(cid);
                        eng.cancel(id);
                    }
                }
                _ => {
                    ref_pop(&mut refq, &mut ref_cancelled, &mut ref_now, &mut ref_log);
                    eng.run_bounded(&mut eng_log, 1);
                }
            }
            assert_eq!(eng_log, ref_log);
            assert_eq!(eng.now(), ref_now);
            assert_eq!(eng.events_pending(), refq.len());
        }
        // drain both to the end
        while !refq.is_empty() {
            ref_pop(&mut refq, &mut ref_cancelled, &mut ref_now, &mut ref_log);
        }
        eng.run(&mut eng_log);
        assert_eq!(eng_log, ref_log);
        assert_eq!(eng.now(), ref_now);
    }
}

/// Engine determinism: identical schedules produce identical histories.
#[test]
fn engine_is_deterministic() {
    for mut rng in cases("determinism", 64) {
        let delays = random_vec(&mut rng, 100, 10_000);
        let run = |delays: &[u64]| -> (u64, u64) {
            let mut eng: Engine<u64> = Engine::new();
            for &d in delays {
                eng.schedule(SimDuration::from_nanos(d), move |eng, acc: &mut u64| {
                    *acc = acc.wrapping_mul(31).wrapping_add(eng.now().as_nanos());
                });
            }
            let mut acc = 0;
            eng.run(&mut acc);
            (acc, eng.now().as_nanos())
        };
        assert_eq!(run(&delays), run(&delays));
    }
}
