//! Property-based tests of the DES kernel.

use harborsim_des::{Engine, FluidLink, Resource, RngStream, SimDuration};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Events always execute in (time, schedule-order) sequence, whatever
    /// order they were submitted in.
    #[test]
    fn event_order_is_time_then_fifo(delays in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut eng: Engine<Vec<(u64, usize)>> = Engine::new();
        for (i, &d) in delays.iter().enumerate() {
            eng.schedule(SimDuration::from_nanos(d), move |eng, log: &mut Vec<(u64, usize)>| {
                log.push((eng.now().as_nanos(), i));
            });
        }
        let mut log = Vec::new();
        eng.run(&mut log);
        prop_assert_eq!(log.len(), delays.len());
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time must be monotone");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "ties break by schedule order");
            }
        }
    }

    /// A FIFO resource of capacity c serving n unit jobs of duration d
    /// finishes at exactly ceil(n/c)*d.
    #[test]
    fn resource_makespan_exact(jobs in 1u32..60, capacity in 1u32..8) {
        struct St { res: Resource<St>, done: u32 }
        let mut eng: Engine<St> = Engine::new();
        let mut st = St { res: Resource::new(capacity), done: 0 };
        let hold = SimDuration::from_millis(10);
        for _ in 0..jobs {
            eng.schedule(SimDuration::ZERO, move |eng, st: &mut St| {
                st.res.acquire(eng, move |eng, _| {
                    eng.schedule(hold, move |eng, st: &mut St| {
                        st.done += 1;
                        st.res.release(eng);
                    });
                });
            });
        }
        eng.run(&mut st);
        prop_assert_eq!(st.done, jobs);
        let waves = jobs.div_ceil(capacity) as u64;
        prop_assert_eq!(eng.now().as_nanos(), waves * 10_000_000);
    }

    /// Fair-share links conserve bytes and never exceed capacity.
    #[test]
    fn fluid_link_conserves(sizes in prop::collection::vec(1.0f64..1e6, 1..40)) {
        struct St { link: FluidLink<St>, done: usize }
        fn acc(s: &mut St) -> &mut FluidLink<St> { &mut s.link }
        let mut eng: Engine<St> = Engine::new();
        let mut st = St { link: FluidLink::new(1e6, acc), done: 0 };
        for (i, &bytes) in sizes.iter().enumerate() {
            eng.schedule(SimDuration::from_micros(i as u64 * 37), move |eng, st: &mut St| {
                st.link.start_flow(eng, bytes, |_, st| st.done += 1);
            });
        }
        eng.run(&mut st);
        prop_assert_eq!(st.done, sizes.len());
        let total: f64 = sizes.iter().sum();
        prop_assert!((st.link.bytes_completed() - total).abs() / total < 1e-6);
        // aggregate throughput bounded by capacity
        let makespan = eng.now().as_secs_f64();
        prop_assert!(total / makespan <= 1e6 * (1.0 + 1e-9));
    }

    /// RNG streams are reproducible and label-derivations independent of
    /// consumption order.
    #[test]
    fn rng_substreams_stable(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let root = RngStream::new(seed);
        let mut a = root.derive(&label);
        // consuming the parent's siblings must not perturb `a`
        let mut noise = root.derive("noise");
        let _ = noise.next_u64();
        let mut b = root.derive(&label);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Engine determinism: identical schedules produce identical histories.
    #[test]
    fn engine_is_deterministic(delays in prop::collection::vec(0u64..10_000, 1..100)) {
        let run = |delays: &[u64]| -> (u64, u64) {
            let mut eng: Engine<u64> = Engine::new();
            for &d in delays {
                eng.schedule(SimDuration::from_nanos(d), move |eng, acc: &mut u64| {
                    *acc = acc.wrapping_mul(31).wrapping_add(eng.now().as_nanos());
                });
            }
            let mut acc = 0;
            eng.run(&mut acc);
            (acc, eng.now().as_nanos())
        };
        prop_assert_eq!(run(&delays), run(&delays));
    }
}
