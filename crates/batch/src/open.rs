//! The open-system campaign engine: jobs arrive by a stochastic process,
//! stage their containers through two shared pipes, run, and leave.
//!
//! The closed [`crate::scheduler::Scheduler`] drains a fixed submission
//! list. Production systems are *open*: tenants keep submitting, and the
//! interesting dynamics — queue-wait tails, deployment storms where
//! co-arriving jobs throttle each other's image pulls — only exist when
//! arrival pressure is part of the model. This module drives the same
//! FIFO + EASY decision core (`SchedCore`) from an arrival list sampled
//! upstream (Poisson interarrivals, Zipf job mix — see
//! `harborsim_core::open`), and inserts a *staging phase* between node
//! grant and solver start: each job's [`StagePlan`] bytes contend
//! fair-share on a registry uplink and a parallel-filesystem
//! [`FluidLink`], while its fixed latency (metadata, unpack, gateway
//! pack, launcher fan-out) runs in parallel. The job's nodes are held —
//! and billed — for the whole stage, exactly as on the real machines.
//!
//! Everything is a serial discrete-event simulation over one clock, so
//! results are bit-identical for a given job list whatever the host.
//!
//! [`FluidLink`]: harborsim_des::FluidLink

use crate::job::Job;
use crate::scheduler::SchedCore;
use harborsim_container::StagePlan;
use harborsim_des::trace::{Recorder, SpanCategory};
use harborsim_des::{Engine, FluidLink, SimDuration, SimTime};

/// A job in an open campaign, fully sampled before simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenJob {
    /// Dense id (also the trace track).
    pub id: u32,
    /// Submitting tenant.
    pub tenant: u32,
    /// Index into the campaign's class table (size × case × runtime).
    pub class: usize,
    /// Nodes requested.
    pub nodes: u32,
    /// Arrival time in seconds.
    pub submit_s: f64,
    /// Solver time once staged (from the class's compiled plan).
    pub solver_s: f64,
    /// Walltime request the scheduler plans reservations with.
    pub walltime_s: f64,
    /// Staging demand (registry bytes, PFS bytes, fixed seconds).
    pub stage: StagePlan,
}

/// The machine an open campaign runs on, reduced to what the engine
/// needs: a node pool and the two shared staging pipes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenCluster {
    /// Schedulable nodes.
    pub total_nodes: u32,
    /// Registry uplink capacity in bytes/s.
    pub registry_bps: f64,
    /// Parallel-filesystem bandwidth in bytes/s.
    pub pfs_bps: f64,
}

/// What happened to one open-campaign job.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenJobRecord {
    /// The job id.
    pub id: u32,
    /// Submitting tenant.
    pub tenant: u32,
    /// Class-table index.
    pub class: usize,
    /// Nodes held.
    pub nodes: u32,
    /// Arrival time.
    pub submit_s: f64,
    /// Queue wait: arrival to node grant.
    pub wait_s: f64,
    /// Staging: node grant to solver start (contended).
    pub stage_s: f64,
    /// Solver time.
    pub run_s: f64,
    /// Whether EASY backfill started it out of FIFO order.
    pub backfilled: bool,
}

impl OpenJobRecord {
    /// Submission-to-completion time.
    pub fn turnaround_s(&self) -> f64 {
        self.wait_s + self.stage_s + self.run_s
    }
}

/// The result of an open-campaign run.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenOutcome {
    /// Per-job records, id order.
    pub records: Vec<OpenJobRecord>,
    /// Last completion time.
    pub makespan_s: f64,
    /// Mean node utilization over the makespan (stage + solve both hold
    /// nodes).
    pub utilization: f64,
    /// Share of delivered node-seconds that went to backfilled jobs.
    pub backfill_node_share: f64,
    /// Discrete events processed (arrivals, stage completions, solver
    /// finishes) — the unit of the open-system throughput benchmark.
    pub events: u64,
    /// Most simultaneous registry pulls (the deployment-storm depth).
    pub peak_registry_flows: usize,
    /// Most simultaneous parallel-filesystem streams.
    pub peak_pfs_flows: usize,
}

/// A granted job mid-flight: counts down its staging parts, then solves.
struct Slot {
    job: OpenJob,
    granted: SimTime,
    solve_started: SimTime,
    backfilled: bool,
    /// Staging parts still in flight (fixed latency + up to two flows).
    pending: u32,
}

struct St {
    core: SchedCore,
    registry: FluidLink<St>,
    pfs: FluidLink<St>,
    /// Pending arrivals, soonest last.
    arrivals: Vec<OpenJob>,
    slots: Vec<Option<Slot>>,
    records: Vec<OpenJobRecord>,
    events: u64,
    rec: Recorder,
}

fn registry_of(st: &mut St) -> &mut FluidLink<St> {
    &mut st.registry
}

fn pfs_of(st: &mut St) -> &mut FluidLink<St> {
    &mut st.pfs
}

/// Run an open campaign to completion. Jobs may arrive in any order;
/// ids must be unique. Spans (queue/backfill wait, staging, solver) are
/// emitted through `rec` on track `job.id`.
///
/// # Panics
/// Panics if a job requests more nodes than the cluster has.
pub fn run_open(cluster: &OpenCluster, jobs: Vec<OpenJob>, rec: &mut Recorder) -> OpenOutcome {
    let mut jobs = jobs;
    for j in &jobs {
        assert!(
            j.nodes >= 1 && j.nodes <= cluster.total_nodes,
            "job {} wants {} nodes, machine has {}",
            j.id,
            j.nodes,
            cluster.total_nodes
        );
    }
    jobs.sort_by(|a, b| a.submit_s.total_cmp(&b.submit_s).then(a.id.cmp(&b.id)));
    let max_id = jobs.iter().map(|j| j.id + 1).max().unwrap_or(0);
    let mut state = St {
        core: SchedCore::new(cluster.total_nodes),
        registry: FluidLink::new(cluster.registry_bps, registry_of),
        pfs: FluidLink::new(cluster.pfs_bps, pfs_of),
        arrivals: Vec::new(),
        slots: (0..max_id).map(|_| None).collect(),
        records: Vec::new(),
        events: 0,
        rec: Recorder::like(rec),
    };
    state.rec.declare_tracks(max_id);
    jobs.reverse();
    state.arrivals = jobs;
    let mut eng: Engine<St> = Engine::new();
    next_arrival(&mut eng, &mut state);
    eng.run(&mut state);
    assert!(state.arrivals.is_empty(), "open run left arrivals pending");
    assert!(state.core.queue.is_empty(), "open run left jobs queued");
    assert!(state.core.running.is_empty(), "open run left jobs running");
    state.core.account(eng.now());
    let makespan = eng.now();
    let utilization = state.core.utilization(makespan);
    rec.merge(state.rec);
    let mut records = state.records;
    records.sort_by_key(|r| r.id);
    let delivered: f64 = records
        .iter()
        .map(|r| r.nodes as f64 * (r.stage_s + r.run_s))
        .sum();
    let backfilled: f64 = records
        .iter()
        .filter(|r| r.backfilled)
        .map(|r| r.nodes as f64 * (r.stage_s + r.run_s))
        .sum();
    OpenOutcome {
        records,
        makespan_s: makespan.as_secs_f64(),
        utilization,
        // an empty f64 sum is -0.0 (the sign-preserving additive
        // identity), which would print as "-0"; route it to +0.0
        backfill_node_share: if backfilled > 0.0 && delivered > 0.0 {
            backfilled / delivered
        } else {
            0.0
        },
        events: state.events,
        peak_registry_flows: state.registry.peak_concurrency(),
        peak_pfs_flows: state.pfs.peak_concurrency(),
    }
}

/// Schedule the next pending arrival; it enqueues, dispatches, chains.
fn next_arrival(eng: &mut Engine<St>, st: &mut St) {
    let Some(next) = st.arrivals.last() else {
        return;
    };
    let at = SimTime::ZERO + SimDuration::from_secs_f64(next.submit_s);
    eng.schedule_at(at, move |eng, st: &mut St| {
        st.events += 1;
        let job = st
            .arrivals
            .pop()
            .expect("arrival event with no job pending");
        let id = job.id;
        st.core.enqueue(Job::new(
            id,
            job.nodes,
            job.walltime_s,
            job.walltime_s,
            job.submit_s,
        ));
        assert!(
            st.slots[id as usize].is_none(),
            "duplicate open job id {id}"
        );
        st.slots[id as usize] = Some(Slot {
            job,
            granted: SimTime::ZERO,
            solve_started: SimTime::ZERO,
            backfilled: false,
            pending: 0,
        });
        dispatch(eng, st);
        next_arrival(eng, st);
    });
}

/// Grant pass: every job the core starts begins its staging phase.
fn dispatch(eng: &mut Engine<St>, st: &mut St) {
    let now = eng.now();
    for (job, backfilled) in st.core.grants(now) {
        begin_stage(eng, st, job.id, backfilled);
    }
}

fn begin_stage(eng: &mut Engine<St>, st: &mut St, id: u32, backfilled: bool) {
    let now = eng.now();
    let (stage, submit) = {
        let slot = st.slots[id as usize]
            .as_mut()
            .expect("granted job has no slot");
        slot.granted = now;
        slot.backfilled = backfilled;
        slot.pending = 1
            + u32::from(slot.job.stage.registry_bytes > 0.0)
            + u32::from(slot.job.stage.pfs_bytes > 0.0);
        (slot.job.stage, slot.job.submit_s)
    };
    let (cat, name) = if backfilled {
        (SpanCategory::Backfill, "backfill-wait")
    } else {
        (SpanCategory::Queue, "queue-wait")
    };
    st.rec.span(
        cat,
        name,
        id,
        SimTime::ZERO + SimDuration::from_secs_f64(submit),
        now,
    );
    eng.schedule(
        SimDuration::from_secs_f64(stage.fixed_s),
        move |eng, st: &mut St| stage_part_done(eng, st, id),
    );
    if stage.registry_bytes > 0.0 {
        st.registry
            .start_flow(eng, stage.registry_bytes, move |eng, st| {
                stage_part_done(eng, st, id)
            });
    }
    if stage.pfs_bytes > 0.0 {
        st.pfs.start_flow(eng, stage.pfs_bytes, move |eng, st| {
            stage_part_done(eng, st, id)
        });
    }
}

/// One staging part (fixed latency or a flow) finished; when all have,
/// the solver starts.
fn stage_part_done(eng: &mut Engine<St>, st: &mut St, id: u32) {
    st.events += 1;
    let now = eng.now();
    let (granted, solver_s, nodes) = {
        let slot = st.slots[id as usize]
            .as_mut()
            .expect("staging part for a job with no slot");
        slot.pending -= 1;
        if slot.pending > 0 {
            return;
        }
        slot.solve_started = now;
        (slot.granted, slot.job.solver_s, slot.job.nodes)
    };
    st.rec.span(SpanCategory::Pull, "stage", id, granted, now);
    let solver = SimDuration::from_secs_f64(solver_s);
    st.rec
        .span(SpanCategory::Launch, "job-run", id, now, now + solver);
    eng.schedule(solver, move |eng, st: &mut St| {
        st.events += 1;
        let now = eng.now();
        st.core.release(id, nodes, now);
        let slot = st.slots[id as usize]
            .take()
            .expect("finishing job has no slot");
        st.records.push(OpenJobRecord {
            id,
            tenant: slot.job.tenant,
            class: slot.job.class,
            nodes: slot.job.nodes,
            submit_s: slot.job.submit_s,
            wait_s: slot
                .granted
                .since(SimTime::ZERO + SimDuration::from_secs_f64(slot.job.submit_s))
                .as_secs_f64(),
            stage_s: slot.solve_started.since(slot.granted).as_secs_f64(),
            run_s: now.since(slot.solve_started).as_secs_f64(),
            backfilled: slot.backfilled,
        });
        dispatch(eng, st);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> OpenCluster {
        OpenCluster {
            total_nodes: 4,
            registry_bps: 100e6,
            pfs_bps: 1e9,
        }
    }

    fn job(id: u32, nodes: u32, submit_s: f64, stage: StagePlan) -> OpenJob {
        OpenJob {
            id,
            tenant: id % 3,
            class: 0,
            nodes,
            submit_s,
            solver_s: 50.0,
            walltime_s: 1000.0,
            stage,
        }
    }

    fn pull(registry_bytes: f64) -> StagePlan {
        StagePlan {
            registry_bytes,
            pfs_bytes: 0.0,
            fixed_s: 2.0,
        }
    }

    #[test]
    fn an_uncontended_job_matches_its_solo_estimate() {
        let c = cluster();
        let stage = StagePlan {
            registry_bytes: 200e6,
            pfs_bytes: 500e6,
            fixed_s: 3.0,
        };
        let out = run_open(&c, vec![job(0, 2, 0.0, stage)], &mut Recorder::off());
        let r = &out.records[0];
        assert_eq!(r.wait_s, 0.0);
        // parts run in parallel: the stage is the slowest of the three
        let expect = 3.0_f64.max(200e6 / c.registry_bps).max(500e6 / c.pfs_bps);
        assert!((r.stage_s - expect).abs() < 1e-6, "stage {}", r.stage_s);
        assert!((r.run_s - 50.0).abs() < 1e-9);
        assert!((out.makespan_s - (r.stage_s + 50.0)).abs() < 1e-6);
    }

    #[test]
    fn co_arriving_pulls_contend_for_the_registry() {
        let c = cluster();
        // alone: 100 MB at 100 MB/s = 1 s; together they fair-share
        let jobs = vec![job(0, 1, 0.0, pull(100e6)), job(1, 1, 0.0, pull(100e6))];
        let out = run_open(&c, jobs, &mut Recorder::off());
        assert_eq!(out.peak_registry_flows, 2);
        for r in &out.records {
            assert!(
                (r.stage_s - 2.0_f64.max(2.0)).abs() < 1e-6,
                "contended stage {}",
                r.stage_s
            );
        }
        // a lone job would have staged in max(fixed 2 s, 1 s transfer)
        let solo = run_open(&c, vec![job(0, 1, 0.0, pull(100e6))], &mut Recorder::off());
        assert!(out.records[0].stage_s >= solo.records[0].stage_s);
    }

    #[test]
    fn backfill_fills_holes_mid_storm() {
        let c = cluster();
        let mut jobs = vec![
            job(0, 2, 0.0, pull(0.0)), // holds 2 nodes
            job(1, 4, 1.0, pull(0.0)), // head: must wait for the machine
            job(2, 1, 2.0, pull(0.0)), // short, fits the hole
        ];
        jobs[2].solver_s = 5.0;
        jobs[2].walltime_s = 10.0;
        let out = run_open(&c, jobs, &mut Recorder::off());
        let r2 = out.records.iter().find(|r| r.id == 2).unwrap();
        assert!(r2.backfilled, "small job should backfill");
        assert!(out.backfill_node_share > 0.0 && out.backfill_node_share < 1.0);
        let r1 = out.records.iter().find(|r| r.id == 1).unwrap();
        assert!(r1.wait_s > 0.0, "head waited for the full machine");
    }

    #[test]
    fn deterministic_and_conserves_jobs() {
        let build = || {
            let c = cluster();
            let jobs: Vec<OpenJob> = (0..10)
                .map(|i| {
                    let mut j = job(
                        i,
                        1 + i % 3,
                        7.0 * i as f64,
                        pull(40e6 * (1 + i % 2) as f64),
                    );
                    j.solver_s = 30.0 + 4.0 * i as f64;
                    j
                })
                .collect();
            run_open(&c, jobs, &mut Recorder::off())
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        assert_eq!(a.records.len(), 10);
        assert!(a.utilization > 0.0 && a.utilization <= 1.0);
        assert!(a.events > 30, "arrival + staging + finish per job");
        for r in &a.records {
            assert!(r.turnaround_s() >= r.run_s);
        }
    }
}
