//! # harborsim-batch
//!
//! The batch-system substrate. Every run in the paper went through a batch
//! scheduler (SLURM on the BSC machines); what a user experiences is not
//! the solver time but the *turnaround*: queue wait + image staging + job
//! launch + execution. This crate supplies:
//!
//! - [`job`] — job descriptions (node request, walltime estimate, actual
//!   runtime) and per-job outcome records;
//! - [`scheduler`] — a discrete-event cluster scheduler with FIFO order and
//!   EASY backfilling (the standard production policy: the queue head gets
//!   a reservation, later jobs may jump ahead only if they cannot delay
//!   it);
//! - [`campaign`] — containerized campaign modelling: a sequence of jobs
//!   under one technology, with cross-job cache effects (Shifter's gateway
//!   conversion and Docker's node-layer caches pay once);
//! - [`open`] — the open-system engine: sampled arrivals drive the same
//!   FIFO + EASY core, and each job stages its container through shared
//!   registry/filesystem pipes before solving (deployment storms).

pub mod campaign;
pub mod job;
pub mod open;
pub mod scheduler;

pub use campaign::{Campaign, CampaignReport};
pub use job::{Job, JobOutcome};
pub use open::{run_open, OpenCluster, OpenJob, OpenJobRecord, OpenOutcome};
pub use scheduler::Scheduler;
