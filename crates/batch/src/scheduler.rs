//! A FIFO + EASY-backfill cluster scheduler as a discrete-event simulation.
//!
//! The production policy on machines like MareNostrum4: jobs start in
//! submission order; when the queue head does not fit, it receives a
//! *reservation* at the earliest instant enough nodes will be free, and
//! later jobs may start out of order ("backfill") only if doing so cannot
//! delay that reservation — either they finish before it (by their
//! walltime estimate), or they fit in nodes the head will not need.

use crate::job::{Job, JobOutcome};
use harborsim_des::trace::{Recorder, SpanCategory};
use harborsim_des::{Engine, SimTime};
use std::collections::VecDeque;

struct Running {
    #[allow(dead_code)]
    id: u32,
    nodes: u32,
    /// When the scheduler may count these nodes free (walltime-based for
    /// planning; the actual release event uses the true runtime).
    est_end: SimTime,
}

struct State {
    total_nodes: u32,
    free: u32,
    queue: VecDeque<Job>,
    running: Vec<Running>,
    outcomes: Vec<JobOutcome>,
    busy_node_seconds: f64,
    last_change: SimTime,
    rec: Recorder,
}

impl State {
    fn account(&mut self, now: SimTime) {
        let dt = now.since(self.last_change).as_secs_f64();
        self.busy_node_seconds += dt * (self.total_nodes - self.free) as f64;
        self.last_change = now;
    }
}

/// The scheduler: submit jobs, then [`Scheduler::run`].
pub struct Scheduler {
    jobs: Vec<Job>,
    total_nodes: u32,
}

/// The result of a scheduling run.
#[derive(Debug, Clone)]
pub struct ScheduleResult {
    /// Per-job outcomes, submission order.
    pub outcomes: Vec<JobOutcome>,
    /// Makespan (last end time).
    pub makespan: SimTime,
    /// Mean node utilization over the makespan (0..1).
    pub utilization: f64,
}

impl Scheduler {
    /// A scheduler over a machine of `total_nodes` nodes.
    pub fn new(total_nodes: u32) -> Scheduler {
        assert!(total_nodes > 0);
        Scheduler {
            jobs: Vec::new(),
            total_nodes,
        }
    }

    /// Queue a job (any submit time; jobs are sorted internally).
    ///
    /// # Panics
    /// Panics if the job requests more nodes than the machine has.
    pub fn submit(&mut self, job: Job) {
        assert!(
            job.nodes <= self.total_nodes,
            "job {} wants {} nodes, machine has {}",
            job.id,
            job.nodes,
            self.total_nodes
        );
        self.jobs.push(job);
    }

    /// Run to completion, emitting one wait span (queue or backfill) and
    /// one launch span per job through `rec`, on track `job.id`. Pass
    /// [`Recorder::off`] for the untraced path.
    pub fn run(self, rec: &mut Recorder) -> ScheduleResult {
        let mut eng: Engine<State> = Engine::new();
        let mut state = State {
            total_nodes: self.total_nodes,
            free: self.total_nodes,
            queue: VecDeque::new(),
            running: Vec::new(),
            outcomes: Vec::new(),
            busy_node_seconds: 0.0,
            last_change: SimTime::ZERO,
            rec: Recorder::like(rec),
        };
        let mut jobs = self.jobs;
        jobs.sort_by_key(|j| (j.submit, j.id));
        state
            .rec
            .declare_tracks(jobs.iter().map(|j| j.id + 1).max().unwrap_or(0));
        for job in jobs {
            let at = job.submit;
            eng.schedule_at(at, move |eng, st: &mut State| {
                st.queue.push_back(job.clone());
                try_schedule(eng, st);
            });
        }
        eng.run(&mut state);
        assert!(state.queue.is_empty(), "scheduler left jobs queued");
        assert!(state.running.is_empty(), "scheduler left jobs running");
        state.account(eng.now());
        let makespan = eng.now();
        let util = if makespan == SimTime::ZERO {
            0.0
        } else {
            state.busy_node_seconds / (makespan.as_secs_f64() * self.total_nodes as f64)
        };
        rec.merge(state.rec);
        let mut outcomes = state.outcomes;
        outcomes.sort_by_key(|o| o.id);
        ScheduleResult {
            outcomes,
            makespan,
            utilization: util,
        }
    }
}

fn start_job(eng: &mut Engine<State>, st: &mut State, job: Job, backfilled: bool) {
    let now = eng.now();
    st.account(now);
    let (cat, name) = if backfilled {
        (SpanCategory::Backfill, "backfill-wait")
    } else {
        (SpanCategory::Queue, "queue-wait")
    };
    st.rec.span(cat, name, job.id, job.submit, now);
    st.rec.span(
        SpanCategory::Launch,
        "job-run",
        job.id,
        now,
        now + job.runtime,
    );
    debug_assert!(st.free >= job.nodes);
    st.free -= job.nodes;
    st.running.push(Running {
        id: job.id,
        nodes: job.nodes,
        est_end: now + job.walltime,
    });
    st.outcomes.push(JobOutcome {
        id: job.id,
        start: now,
        end: now, // patched at finish
        wait: now.since(job.submit),
    });
    let (id, nodes, runtime) = (job.id, job.nodes, job.runtime);
    eng.schedule(runtime, move |eng, st: &mut State| {
        let now = eng.now();
        st.account(now);
        st.free += nodes;
        st.running.retain(|r| r.id != id);
        if let Some(o) = st.outcomes.iter_mut().find(|o| o.id == id) {
            o.end = now;
        }
        try_schedule(eng, st);
    });
}

/// FIFO start + EASY backfill pass.
fn try_schedule(eng: &mut Engine<State>, st: &mut State) {
    // start the head (and successive heads) while they fit
    while let Some(head) = st.queue.front() {
        if head.nodes <= st.free {
            let job = st.queue.pop_front().expect("head exists");
            start_job(eng, st, job, false);
        } else {
            break;
        }
    }
    let Some(head) = st.queue.front() else {
        return;
    };
    // reservation for the head: walk running jobs by estimated end until
    // enough nodes accumulate
    let mut ends: Vec<(SimTime, u32)> = st.running.iter().map(|r| (r.est_end, r.nodes)).collect();
    ends.sort();
    let mut avail = st.free;
    let mut shadow = SimTime::MAX;
    for (t, n) in &ends {
        avail += n;
        if avail >= head.nodes {
            shadow = *t;
            break;
        }
    }
    debug_assert!(shadow != SimTime::MAX, "head can never run?");
    // nodes not claimed by the head at the shadow time
    let spare_at_shadow = avail.saturating_sub(head.nodes);
    let head_nodes = head.nodes;
    let _ = head_nodes;
    // backfill pass over the rest of the queue
    let now = eng.now();
    let mut i = 1;
    while i < st.queue.len() {
        let cand = &st.queue[i];
        let fits_now = cand.nodes <= st.free;
        let ends_before_shadow = now + cand.walltime <= shadow;
        let uses_spare = cand.nodes <= spare_at_shadow;
        if fits_now && (ends_before_shadow || uses_spare) {
            let job = st.queue.remove(i).expect("index checked");
            start_job(eng, st, job, true);
            // free changed; the head still cannot start (its requirement
            // exceeded free before, and backfilled jobs only shrank free)
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harborsim_des::SimDuration;

    fn outcome(res: &ScheduleResult, id: u32) -> &JobOutcome {
        res.outcomes.iter().find(|o| o.id == id).unwrap()
    }

    #[test]
    fn single_job_runs_immediately() {
        let mut s = Scheduler::new(8);
        s.submit(Job::new(1, 4, 100.0, 60.0, 0.0));
        let res = s.run(&mut Recorder::off());
        let o = outcome(&res, 1);
        assert_eq!(o.wait, SimDuration::ZERO);
        assert!((o.end.as_secs_f64() - 60.0).abs() < 1e-9);
        assert!((res.utilization - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fifo_order_without_backfill_opportunity() {
        let mut s = Scheduler::new(4);
        // two full-machine jobs: strictly sequential
        s.submit(Job::new(1, 4, 100.0, 100.0, 0.0));
        s.submit(Job::new(2, 4, 100.0, 100.0, 0.0));
        let res = s.run(&mut Recorder::off());
        assert!(outcome(&res, 1).start.as_secs_f64().abs() < 1e-9);
        assert!((outcome(&res, 2).start.as_secs_f64() - 100.0).abs() < 1e-9);
        assert!((res.makespan.as_secs_f64() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn easy_backfill_fills_the_hole() {
        let mut s = Scheduler::new(4);
        s.submit(Job::new(1, 2, 100.0, 100.0, 0.0)); // runs on 2 nodes
        s.submit(Job::new(2, 4, 100.0, 100.0, 0.0)); // head: must wait for all 4
        s.submit(Job::new(3, 2, 50.0, 50.0, 0.0)); // fits the hole and ends before the shadow
        let res = s.run(&mut Recorder::off());
        assert!(
            outcome(&res, 3).start.as_secs_f64().abs() < 1e-9,
            "backfilled"
        );
        assert!(
            (outcome(&res, 2).start.as_secs_f64() - 100.0).abs() < 1e-9,
            "head undelayed"
        );
    }

    #[test]
    fn backfill_never_delays_the_head() {
        let mut s = Scheduler::new(4);
        s.submit(Job::new(1, 2, 100.0, 100.0, 0.0));
        s.submit(Job::new(2, 4, 100.0, 100.0, 0.0)); // head, shadow = 100
        s.submit(Job::new(3, 2, 200.0, 200.0, 0.0)); // would delay the head: no backfill
        let res = s.run(&mut Recorder::off());
        assert!((outcome(&res, 2).start.as_secs_f64() - 100.0).abs() < 1e-9);
        assert!(outcome(&res, 3).start.as_secs_f64() >= 100.0);
    }

    #[test]
    fn early_finish_releases_nodes_early() {
        let mut s = Scheduler::new(4);
        // estimates 100 but actually finishes at 30
        s.submit(Job::new(1, 4, 100.0, 30.0, 0.0));
        s.submit(Job::new(2, 4, 100.0, 50.0, 0.0));
        let res = s.run(&mut Recorder::off());
        assert!((outcome(&res, 2).start.as_secs_f64() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn staggered_submissions() {
        let mut s = Scheduler::new(4);
        s.submit(Job::new(1, 4, 60.0, 60.0, 0.0));
        s.submit(Job::new(2, 2, 60.0, 60.0, 100.0)); // machine idle when it arrives
        let res = s.run(&mut Recorder::off());
        assert!((outcome(&res, 2).start.as_secs_f64() - 100.0).abs() < 1e-9);
        assert_eq!(outcome(&res, 2).wait, SimDuration::ZERO);
    }

    #[test]
    fn utilization_bounded() {
        let mut s = Scheduler::new(8);
        for i in 0..10 {
            s.submit(Job::new(
                i,
                1 + i % 4,
                150.0,
                40.0 + 5.0 * i as f64,
                10.0 * i as f64,
            ));
        }
        let res = s.run(&mut Recorder::off());
        assert!(res.utilization > 0.0 && res.utilization <= 1.0);
        assert_eq!(res.outcomes.len(), 10);
        // conservation: every job ran for exactly its runtime
        for (i, o) in res.outcomes.iter().enumerate() {
            let expected = 40.0 + 5.0 * i as f64;
            assert!(
                (o.end.since(o.start).as_secs_f64() - expected).abs() < 1e-9,
                "job {i}"
            );
        }
    }

    #[test]
    fn deterministic() {
        let build = || {
            let mut s = Scheduler::new(6);
            for i in 0..12 {
                s.submit(Job::new(
                    i,
                    1 + (i * 7) % 5,
                    300.0,
                    100.0 + (i * 13) as f64 % 150.0,
                    (i * 31) as f64 % 200.0,
                ));
            }
            s.run(&mut Recorder::off())
        };
        let a = build();
        let b = build();
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.makespan, b.makespan);
    }
}
