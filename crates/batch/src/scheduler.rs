//! A FIFO + EASY-backfill cluster scheduler as a discrete-event simulation.
//!
//! The production policy on machines like MareNostrum4: jobs start in
//! submission order; when the queue head does not fit, it receives a
//! *reservation* at the earliest instant enough nodes will be free, and
//! later jobs may start out of order ("backfill") only if doing so cannot
//! delay that reservation — either they finish before it (by their
//! walltime estimate), or they fit in nodes the head will not need.
//!
//! Job *arrival* is an event source, not a pre-enqueued list: each
//! arrival event enqueues its job, runs a scheduling pass, and schedules
//! the next arrival — so jobs may materialize mid-simulation. The closed
//! [`Scheduler`] drains a submitted list through that chain; the
//! open-system engine ([`crate::open`]) drives the same decision core,
//! `SchedCore`, from a sampled arrival process instead.

use crate::job::{Job, JobOutcome};
use harborsim_des::trace::{Recorder, SpanCategory};
use harborsim_des::{Engine, SimTime};
use std::collections::VecDeque;

pub(crate) struct Running {
    pub(crate) id: u32,
    pub(crate) nodes: u32,
    /// When the scheduler may count these nodes free (walltime-based for
    /// planning; the actual release event uses the true runtime).
    pub(crate) est_end: SimTime,
}

/// The engine-agnostic scheduling core: node accounting, the pending
/// queue, and the FIFO + EASY grant decision. Both the closed
/// [`Scheduler`] and the open-system engine drive their event loops
/// through it — enqueue on arrival, [`SchedCore::grants`] after every
/// state change, [`SchedCore::release`] when a job's nodes come back.
pub(crate) struct SchedCore {
    pub(crate) total_nodes: u32,
    pub(crate) free: u32,
    pub(crate) queue: VecDeque<Job>,
    pub(crate) running: Vec<Running>,
    pub(crate) busy_node_seconds: f64,
    last_change: SimTime,
}

impl SchedCore {
    pub(crate) fn new(total_nodes: u32) -> SchedCore {
        assert!(total_nodes > 0);
        SchedCore {
            total_nodes,
            free: total_nodes,
            queue: VecDeque::new(),
            running: Vec::new(),
            busy_node_seconds: 0.0,
            last_change: SimTime::ZERO,
        }
    }

    /// Integrate busy-node-seconds up to `now`; call before any change
    /// to `free`.
    pub(crate) fn account(&mut self, now: SimTime) {
        let dt = now.since(self.last_change).as_secs_f64();
        self.busy_node_seconds += dt * (self.total_nodes - self.free) as f64;
        self.last_change = now;
    }

    pub(crate) fn enqueue(&mut self, job: Job) {
        debug_assert!(job.nodes <= self.total_nodes);
        self.queue.push_back(job);
    }

    fn allocate(&mut self, job: &Job, now: SimTime) {
        self.account(now);
        debug_assert!(self.free >= job.nodes);
        self.free -= job.nodes;
        self.running.push(Running {
            id: job.id,
            nodes: job.nodes,
            est_end: now + job.walltime,
        });
    }

    /// Return a job's nodes to the pool.
    pub(crate) fn release(&mut self, id: u32, nodes: u32, now: SimTime) {
        self.account(now);
        self.free += nodes;
        self.running.retain(|r| r.id != id);
    }

    /// One FIFO + EASY pass at `now`: pop every job that may start,
    /// allocate its nodes, and return it with its backfill flag, in
    /// grant order (FIFO heads first, then backfill candidates in queue
    /// order).
    pub(crate) fn grants(&mut self, now: SimTime) -> Vec<(Job, bool)> {
        let mut granted = Vec::new();
        // start the head (and successive heads) while they fit
        while let Some(head) = self.queue.front() {
            if head.nodes <= self.free {
                let job = self.queue.pop_front().expect("head exists");
                self.allocate(&job, now);
                granted.push((job, false));
            } else {
                break;
            }
        }
        let Some(head) = self.queue.front() else {
            return granted;
        };
        let head_nodes = head.nodes;
        // reservation for the head: walk running jobs by estimated end
        // until enough nodes accumulate
        let mut ends: Vec<(SimTime, u32)> =
            self.running.iter().map(|r| (r.est_end, r.nodes)).collect();
        ends.sort();
        let mut avail = self.free;
        let mut shadow = SimTime::MAX;
        for (t, n) in &ends {
            avail += n;
            if avail >= head_nodes {
                shadow = *t;
                break;
            }
        }
        debug_assert!(shadow != SimTime::MAX, "head can never run?");
        // nodes not claimed by the head at the shadow time
        let spare_at_shadow = avail.saturating_sub(head_nodes);
        // backfill pass over the rest of the queue
        let mut i = 1;
        while i < self.queue.len() {
            let cand = &self.queue[i];
            let fits_now = cand.nodes <= self.free;
            let ends_before_shadow = now + cand.walltime <= shadow;
            let uses_spare = cand.nodes <= spare_at_shadow;
            if fits_now && (ends_before_shadow || uses_spare) {
                let job = self.queue.remove(i).expect("index checked");
                self.allocate(&job, now);
                granted.push((job, true));
                // free changed; the head still cannot start (its
                // requirement exceeded free before, and backfilled jobs
                // only shrank free)
            } else {
                i += 1;
            }
        }
        granted
    }

    /// Mean node utilization over `makespan` (0..1).
    pub(crate) fn utilization(&self, makespan: SimTime) -> f64 {
        if makespan == SimTime::ZERO {
            0.0
        } else {
            self.busy_node_seconds / (makespan.as_secs_f64() * self.total_nodes as f64)
        }
    }
}

struct State {
    core: SchedCore,
    /// Pending arrivals, soonest last (popped by the arrival chain).
    arrivals: Vec<Job>,
    outcomes: Vec<JobOutcome>,
    rec: Recorder,
}

/// The scheduler: submit jobs, then [`Scheduler::run`].
pub struct Scheduler {
    jobs: Vec<Job>,
    total_nodes: u32,
}

/// The result of a scheduling run.
#[derive(Debug, Clone)]
pub struct ScheduleResult {
    /// Per-job outcomes, submission order.
    pub outcomes: Vec<JobOutcome>,
    /// Makespan (last end time).
    pub makespan: SimTime,
    /// Mean node utilization over the makespan (0..1).
    pub utilization: f64,
}

impl Scheduler {
    /// A scheduler over a machine of `total_nodes` nodes.
    pub fn new(total_nodes: u32) -> Scheduler {
        Scheduler {
            jobs: Vec::new(),
            total_nodes: {
                assert!(total_nodes > 0);
                total_nodes
            },
        }
    }

    /// Queue a job (any submit time; jobs are sorted internally).
    ///
    /// # Panics
    /// Panics if the job requests more nodes than the machine has.
    pub fn submit(&mut self, job: Job) {
        assert!(
            job.nodes <= self.total_nodes,
            "job {} wants {} nodes, machine has {}",
            job.id,
            job.nodes,
            self.total_nodes
        );
        self.jobs.push(job);
    }

    /// Run to completion, emitting one wait span (queue or backfill) and
    /// one launch span per job through `rec`, on track `job.id`. Pass
    /// [`Recorder::off`] for the untraced path. Arrivals enter the
    /// simulation as a chained event source: only the next pending
    /// arrival is ever scheduled.
    pub fn run(self, rec: &mut Recorder) -> ScheduleResult {
        let mut eng: Engine<State> = Engine::new();
        let mut jobs = self.jobs;
        jobs.sort_by_key(|j| (j.submit, j.id));
        let mut state = State {
            core: SchedCore::new(self.total_nodes),
            arrivals: Vec::new(),
            outcomes: Vec::new(),
            rec: Recorder::like(rec),
        };
        state
            .rec
            .declare_tracks(jobs.iter().map(|j| j.id + 1).max().unwrap_or(0));
        jobs.reverse();
        state.arrivals = jobs;
        next_arrival(&mut eng, &mut state);
        eng.run(&mut state);
        assert!(state.arrivals.is_empty(), "scheduler left arrivals pending");
        assert!(state.core.queue.is_empty(), "scheduler left jobs queued");
        assert!(state.core.running.is_empty(), "scheduler left jobs running");
        state.core.account(eng.now());
        let makespan = eng.now();
        let util = state.core.utilization(makespan);
        rec.merge(state.rec);
        let mut outcomes = state.outcomes;
        outcomes.sort_by_key(|o| o.id);
        ScheduleResult {
            outcomes,
            makespan,
            utilization: util,
        }
    }
}

/// Schedule the next pending arrival (if any): it enqueues its job, runs
/// a grant pass, and chains the arrival after it.
fn next_arrival(eng: &mut Engine<State>, st: &mut State) {
    let Some(next) = st.arrivals.last() else {
        return;
    };
    eng.schedule_at(next.submit, move |eng, st: &mut State| {
        let job = st
            .arrivals
            .pop()
            .expect("arrival event with no job pending");
        st.core.enqueue(job);
        dispatch(eng, st);
        next_arrival(eng, st);
    });
}

/// Run a grant pass and start everything it returns.
fn dispatch(eng: &mut Engine<State>, st: &mut State) {
    let now = eng.now();
    for (job, backfilled) in st.core.grants(now) {
        start_job(eng, st, job, backfilled);
    }
}

fn start_job(eng: &mut Engine<State>, st: &mut State, job: Job, backfilled: bool) {
    let now = eng.now();
    let (cat, name) = if backfilled {
        (SpanCategory::Backfill, "backfill-wait")
    } else {
        (SpanCategory::Queue, "queue-wait")
    };
    st.rec.span(cat, name, job.id, job.submit, now);
    st.rec.span(
        SpanCategory::Launch,
        "job-run",
        job.id,
        now,
        now + job.runtime,
    );
    st.outcomes.push(JobOutcome {
        id: job.id,
        start: now,
        end: now, // patched at finish
        wait: now.since(job.submit),
    });
    let (id, nodes, runtime) = (job.id, job.nodes, job.runtime);
    eng.schedule(runtime, move |eng, st: &mut State| {
        let now = eng.now();
        st.core.release(id, nodes, now);
        if let Some(o) = st.outcomes.iter_mut().find(|o| o.id == id) {
            o.end = now;
        }
        dispatch(eng, st);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use harborsim_des::SimDuration;

    fn outcome(res: &ScheduleResult, id: u32) -> &JobOutcome {
        res.outcomes.iter().find(|o| o.id == id).unwrap()
    }

    #[test]
    fn single_job_runs_immediately() {
        let mut s = Scheduler::new(8);
        s.submit(Job::new(1, 4, 100.0, 60.0, 0.0));
        let res = s.run(&mut Recorder::off());
        let o = outcome(&res, 1);
        assert_eq!(o.wait, SimDuration::ZERO);
        assert!((o.end.as_secs_f64() - 60.0).abs() < 1e-9);
        assert!((res.utilization - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fifo_order_without_backfill_opportunity() {
        let mut s = Scheduler::new(4);
        // two full-machine jobs: strictly sequential
        s.submit(Job::new(1, 4, 100.0, 100.0, 0.0));
        s.submit(Job::new(2, 4, 100.0, 100.0, 0.0));
        let res = s.run(&mut Recorder::off());
        assert!(outcome(&res, 1).start.as_secs_f64().abs() < 1e-9);
        assert!((outcome(&res, 2).start.as_secs_f64() - 100.0).abs() < 1e-9);
        assert!((res.makespan.as_secs_f64() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn easy_backfill_fills_the_hole() {
        let mut s = Scheduler::new(4);
        s.submit(Job::new(1, 2, 100.0, 100.0, 0.0)); // runs on 2 nodes
        s.submit(Job::new(2, 4, 100.0, 100.0, 0.0)); // head: must wait for all 4
        s.submit(Job::new(3, 2, 50.0, 50.0, 0.0)); // fits the hole and ends before the shadow
        let res = s.run(&mut Recorder::off());
        assert!(
            outcome(&res, 3).start.as_secs_f64().abs() < 1e-9,
            "backfilled"
        );
        assert!(
            (outcome(&res, 2).start.as_secs_f64() - 100.0).abs() < 1e-9,
            "head undelayed"
        );
    }

    #[test]
    fn backfill_never_delays_the_head() {
        let mut s = Scheduler::new(4);
        s.submit(Job::new(1, 2, 100.0, 100.0, 0.0));
        s.submit(Job::new(2, 4, 100.0, 100.0, 0.0)); // head, shadow = 100
        s.submit(Job::new(3, 2, 200.0, 200.0, 0.0)); // would delay the head: no backfill
        let res = s.run(&mut Recorder::off());
        assert!((outcome(&res, 2).start.as_secs_f64() - 100.0).abs() < 1e-9);
        assert!(outcome(&res, 3).start.as_secs_f64() >= 100.0);
    }

    #[test]
    fn early_finish_releases_nodes_early() {
        let mut s = Scheduler::new(4);
        // estimates 100 but actually finishes at 30
        s.submit(Job::new(1, 4, 100.0, 30.0, 0.0));
        s.submit(Job::new(2, 4, 100.0, 50.0, 0.0));
        let res = s.run(&mut Recorder::off());
        assert!((outcome(&res, 2).start.as_secs_f64() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn staggered_submissions() {
        let mut s = Scheduler::new(4);
        s.submit(Job::new(1, 4, 60.0, 60.0, 0.0));
        s.submit(Job::new(2, 2, 60.0, 60.0, 100.0)); // machine idle when it arrives
        let res = s.run(&mut Recorder::off());
        assert!((outcome(&res, 2).start.as_secs_f64() - 100.0).abs() < 1e-9);
        assert_eq!(outcome(&res, 2).wait, SimDuration::ZERO);
    }

    #[test]
    fn arrivals_materialize_mid_simulation() {
        // the machine drains completely, then a late job arrives: the
        // arrival chain must still be alive to deliver it
        let mut s = Scheduler::new(4);
        s.submit(Job::new(1, 4, 50.0, 50.0, 0.0));
        s.submit(Job::new(2, 4, 50.0, 50.0, 500.0)); // long idle gap first
        let res = s.run(&mut Recorder::off());
        assert!((outcome(&res, 2).start.as_secs_f64() - 500.0).abs() < 1e-9);
        assert!((res.makespan.as_secs_f64() - 550.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_bounded() {
        let mut s = Scheduler::new(8);
        for i in 0..10 {
            s.submit(Job::new(
                i,
                1 + i % 4,
                150.0,
                40.0 + 5.0 * i as f64,
                10.0 * i as f64,
            ));
        }
        let res = s.run(&mut Recorder::off());
        assert!(res.utilization > 0.0 && res.utilization <= 1.0);
        assert_eq!(res.outcomes.len(), 10);
        // conservation: every job ran for exactly its runtime
        for (i, o) in res.outcomes.iter().enumerate() {
            let expected = 40.0 + 5.0 * i as f64;
            assert!(
                (o.end.since(o.start).as_secs_f64() - expected).abs() < 1e-9,
                "job {i}"
            );
        }
    }

    #[test]
    fn deterministic() {
        let build = || {
            let mut s = Scheduler::new(6);
            for i in 0..12 {
                s.submit(Job::new(
                    i,
                    1 + (i * 7) % 5,
                    300.0,
                    100.0 + (i * 13) as f64 % 150.0,
                    (i * 31) as f64 % 200.0,
                ));
            }
            s.run(&mut Recorder::off())
        };
        let a = build();
        let b = build();
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.makespan, b.makespan);
    }
}
