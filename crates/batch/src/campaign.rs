//! Containerized campaigns: what a research group actually experiences.
//!
//! A production study (like the paper's) is not one job but a campaign of
//! many. Technology choices compound across jobs:
//!
//! - Shifter's gateway conversion and Docker's node-layer caches are paid
//!   by the *first* job and amortized by the rest;
//! - Docker's per-rank daemon launch is paid by *every* job;
//! - queue dynamics (FIFO + backfill) sit on top.
//!
//! [`Campaign::run`] composes the deployment DES, the launch model and the
//! scheduler into per-job turnarounds.

use crate::job::Job;
use crate::scheduler::Scheduler;
use harborsim_container::deploy::DeployPlan;
use harborsim_container::launch::LaunchModel;
use harborsim_container::runtime::{ExecutionEnvironment, RuntimeKind};
use harborsim_container::ImageManifest;
use harborsim_des::trace::Recorder;
use harborsim_des::SimDuration;
use harborsim_hw::ClusterSpec;

/// A campaign of identical jobs under one technology.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// The machine (its node count bounds concurrency).
    pub cluster: ClusterSpec,
    /// Technology under test.
    pub env: ExecutionEnvironment,
    /// The image every job uses.
    pub image: ImageManifest,
    /// Number of jobs.
    pub jobs: u32,
    /// Nodes per job.
    pub nodes_per_job: u32,
    /// Ranks per node (drives the launch cost).
    pub ranks_per_node: u32,
    /// Solver elapsed time per job, seconds (take it from a `Scenario`).
    pub solver_seconds: f64,
    /// Submission spacing, seconds (0 = all at once).
    pub submit_interval_s: f64,
    /// Registry uplink, bytes/s.
    pub registry_uplink_bps: f64,
}

/// Campaign outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Per-job staging (deploy + launch) seconds, submission order.
    pub staging_s: Vec<f64>,
    /// Per-job turnaround seconds (submit → end), submission order.
    pub turnaround_s: Vec<f64>,
    /// Campaign makespan, seconds.
    pub makespan_s: f64,
    /// Machine utilization during the campaign.
    pub utilization: f64,
}

impl CampaignReport {
    /// Mean turnaround.
    pub fn mean_turnaround_s(&self) -> f64 {
        self.turnaround_s.iter().sum::<f64>() / self.turnaround_s.len().max(1) as f64
    }
}

impl Campaign {
    /// Execute the campaign, forwarding deployment spans (per job) and the
    /// scheduler's queue/backfill/launch spans through `rec`. Pass
    /// [`Recorder::off`] for the untraced path.
    pub fn run(&self, rec: &mut Recorder) -> CampaignReport {
        assert!(self.jobs > 0);
        let launch = LaunchModel::default();
        let mut scheduler = Scheduler::new(self.cluster.node_count);
        let mut staging_s = Vec::with_capacity(self.jobs as usize);
        let mut submits = Vec::with_capacity(self.jobs as usize);
        for j in 0..self.jobs {
            let warm = j > 0;
            let deploy = DeployPlan {
                nodes: self.nodes_per_job,
                env: self.env,
                image: self.image.clone(),
                shared_storage: self.cluster.shared_storage.clone(),
                registry_uplink_bps: self.registry_uplink_bps,
                shifter_udi_cached: warm && self.env.runtime == RuntimeKind::Shifter,
                docker_layers_cached: warm && self.env.runtime == RuntimeKind::Docker,
            }
            .run(rec);
            let stage = deploy.makespan.as_secs_f64()
                + launch.launch_seconds(self.env.runtime, self.nodes_per_job, self.ranks_per_node);
            let runtime = stage + self.solver_seconds;
            let submit = j as f64 * self.submit_interval_s;
            staging_s.push(stage);
            submits.push(submit);
            scheduler.submit(Job {
                id: j,
                name: format!("{}-{j}", self.env.label()),
                nodes: self.nodes_per_job,
                walltime: SimDuration::from_secs_f64(runtime * 1.3 + 60.0),
                runtime: SimDuration::from_secs_f64(runtime),
                submit: harborsim_des::SimTime::ZERO + SimDuration::from_secs_f64(submit),
            });
        }
        let res = scheduler.run(rec);
        let turnaround_s: Vec<f64> = res
            .outcomes
            .iter()
            .map(|o| o.end.as_secs_f64() - submits[o.id as usize])
            .collect();
        CampaignReport {
            staging_s,
            turnaround_s,
            makespan_s: res.makespan.as_secs_f64(),
            utilization: res.utilization,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harborsim_container::build::{alya_recipe, BuildEngine};
    use harborsim_hw::presets;

    fn campaign(runtime: RuntimeKind, jobs: u32) -> Campaign {
        let cluster = presets::cte_power();
        let image = BuildEngine::self_contained(cluster.node.cpu.clone())
            .build(&alya_recipe())
            .unwrap()
            .manifest;
        Campaign {
            cluster,
            env: ExecutionEnvironment {
                runtime,
                containment: harborsim_container::Containment::SelfContained,
            },
            image,
            jobs,
            nodes_per_job: 8,
            ranks_per_node: 40,
            solver_seconds: 600.0,
            submit_interval_s: 0.0,
            registry_uplink_bps: 117e6,
        }
    }

    #[test]
    fn shifter_amortizes_the_gateway() {
        let rep = campaign(RuntimeKind::Shifter, 4).run(&mut Recorder::off());
        assert!(
            rep.staging_s[0] > 3.0 * rep.staging_s[1],
            "first job pays the conversion: {:?}",
            rep.staging_s
        );
        assert!((rep.staging_s[1] - rep.staging_s[3]).abs() < 1e-6);
    }

    #[test]
    fn singularity_campaign_beats_docker_campaign() {
        let sing = campaign(RuntimeKind::Singularity, 4).run(&mut Recorder::off());
        let dock = campaign(RuntimeKind::Docker, 4).run(&mut Recorder::off());
        assert!(
            sing.mean_turnaround_s() < dock.mean_turnaround_s(),
            "singularity {} vs docker {}",
            sing.mean_turnaround_s(),
            dock.mean_turnaround_s()
        );
        // ... and the gap is the staging + per-rank launch, not the solver
        for (s, d) in sing.staging_s.iter().zip(&dock.staging_s) {
            assert!(d > s, "docker staging {d} vs singularity {s}");
        }
    }

    #[test]
    fn queue_serializes_when_machine_is_small() {
        // 8 nodes/job x 4 jobs on a 52-node machine: 6 fit side by side, so
        // with simultaneous submission all four run concurrently
        let rep = campaign(RuntimeKind::Singularity, 4).run(&mut Recorder::off());
        let first = rep.turnaround_s[0];
        for t in &rep.turnaround_s {
            assert!((t - first).abs() < 2.0, "{:?}", rep.turnaround_s);
        }
        // 7 jobs exceed the machine (7x8=56 > 52): the last must queue
        let rep7 = campaign(RuntimeKind::Singularity, 7).run(&mut Recorder::off());
        let max = rep7.turnaround_s.iter().cloned().fold(0.0, f64::max);
        let min = rep7.turnaround_s.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max > 1.5 * min,
            "one job must wait: {:?}",
            rep7.turnaround_s
        );
    }

    #[test]
    fn utilization_sane() {
        let rep = campaign(RuntimeKind::BareMetal, 3).run(&mut Recorder::off());
        assert!(rep.utilization > 0.0 && rep.utilization <= 1.0);
        assert_eq!(rep.turnaround_s.len(), 3);
    }
}
