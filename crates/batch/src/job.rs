//! Job descriptions and outcomes.

use harborsim_des::{SimDuration, SimTime};

/// A batch job as submitted.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Submission-order id.
    pub id: u32,
    /// Human name ("fsi-artery-run3").
    pub name: String,
    /// Nodes requested.
    pub nodes: u32,
    /// User's walltime estimate (the scheduler plans with this).
    pub walltime: SimDuration,
    /// What the job actually takes (staging + launch + solve); the
    /// scheduler only learns this when the job ends. Must not exceed the
    /// walltime (jobs are killed at the limit — modelled as exact).
    pub runtime: SimDuration,
    /// Submission time.
    pub submit: SimTime,
}

impl Job {
    /// Quick constructor with seconds-based times.
    pub fn new(id: u32, nodes: u32, walltime_s: f64, runtime_s: f64, submit_s: f64) -> Job {
        assert!(
            runtime_s <= walltime_s,
            "runtime exceeds walltime: job would be killed"
        );
        Job {
            id,
            name: format!("job-{id}"),
            nodes,
            walltime: SimDuration::from_secs_f64(walltime_s),
            runtime: SimDuration::from_secs_f64(runtime_s),
            submit: SimTime::ZERO + SimDuration::from_secs_f64(submit_s),
        }
    }
}

/// What happened to a job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The job id.
    pub id: u32,
    /// When it started.
    pub start: SimTime,
    /// When it finished.
    pub end: SimTime,
    /// Queue wait (start − submit).
    pub wait: SimDuration,
}

impl JobOutcome {
    /// Turnaround (end − submit).
    pub fn turnaround(&self, submit: SimTime) -> SimDuration {
        self.end.since(submit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_checks_walltime() {
        let j = Job::new(1, 4, 3600.0, 1800.0, 0.0);
        assert_eq!(j.nodes, 4);
        assert!(j.runtime < j.walltime);
    }

    #[test]
    #[should_panic(expected = "runtime exceeds walltime")]
    fn overlong_jobs_rejected() {
        Job::new(1, 4, 100.0, 200.0, 0.0);
    }

    #[test]
    fn turnaround_accounts_queue_and_run() {
        let o = JobOutcome {
            id: 1,
            start: SimTime::ZERO + SimDuration::from_secs(50),
            end: SimTime::ZERO + SimDuration::from_secs(150),
            wait: SimDuration::from_secs(40),
        };
        let submit = SimTime::ZERO + SimDuration::from_secs(10);
        assert_eq!(o.turnaround(submit), SimDuration::from_secs(140));
    }
}
