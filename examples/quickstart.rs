//! Quickstart: build an Alya container image, deploy it with Singularity on
//! a model of MareNostrum4, and run the artery CFD case on 2 nodes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use harborsim::container::build::{alya_recipe, BuildEngine};
use harborsim::des::trace::Recorder;
use harborsim::hw::presets;
use harborsim::study::lab::QueryEngine;
use harborsim::study::report::{fmt_bytes, fmt_seconds};
use harborsim::study::scenario::{Execution, Scenario};
use harborsim::study::workloads;

fn main() {
    let cluster = presets::marenostrum4();
    println!(
        "Cluster: {} — {} nodes x {} cores ({}), {}",
        cluster.name,
        cluster.node_count,
        cluster.node.cores(),
        cluster.node.cpu.name,
        cluster.interconnect
    );

    // 1. build the image from its recipe
    let recipe = alya_recipe();
    let build = BuildEngine::self_contained(cluster.node.cpu.clone())
        .build(&recipe)
        .expect("recipe builds");
    println!(
        "\nBuilt image {:?}: {} layers, rootfs {}, build time {}",
        build.manifest.name,
        build.manifest.layers.len(),
        fmt_bytes(build.manifest.uncompressed_bytes()),
        fmt_seconds(build.build_seconds),
    );
    println!("Manifest digest: {}", build.manifest.digest().short());

    // 2. resolve the scenario through the lab: the query engine compiles
    //    it into a plan exactly once (placement validation, job profile,
    //    network model, deployment) and caches it by fingerprint — only
    //    the solver run repeats per seed
    let lab = QueryEngine::new();
    let plan = lab
        .plan(
            &Scenario::new(cluster, workloads::artery_cfd_small())
                .execution(Execution::singularity_system_specific())
                .nodes(2)
                .ranks_per_node(48)
                .with_deployment(),
        )
        .expect("valid scenario");
    println!(
        "\nCompiled plan: {} ranks, engine={}",
        plan.rank_map().ranks(),
        plan.engine_name()
    );
    for seed in [7, 21] {
        println!(
            "  seed {seed}: {}",
            plan.execute(seed, &mut Recorder::off()).elapsed
        );
    }
    let outcome = plan.execute(42, &mut Recorder::aggregating());

    let dep = outcome.deployment.expect("deployment requested");
    println!(
        "\nDeployment: all 2 nodes ready in {}",
        fmt_seconds(dep.makespan.as_secs_f64())
    );
    println!(
        "Solver: {} elapsed ({} compute, {:.1}% communication)",
        outcome.elapsed,
        outcome.result.compute,
        outcome.result.comm_fraction() * 100.0
    );
    println!(
        "Traffic: {} inter-node messages, {} over the wire",
        outcome.result.inter_node_msgs,
        fmt_bytes(outcome.result.inter_node_bytes)
    );

    // 3. the same job inside a *self-contained* image loses the Omni-Path
    //    native transport — the paper's whole portability story. Routed
    //    through the same lab: a new fingerprint, so a second compile.
    let portable = lab.outcome(
        Scenario::new(presets::marenostrum4(), workloads::artery_cfd_small())
            .execution(Execution::singularity_self_contained())
            .nodes(2)
            .ranks_per_node(48),
        42,
    );
    println!(
        "\nSame job, self-contained image: {} ({:.2}x slower — IPoFabric instead of PSM2)",
        portable.elapsed,
        portable.elapsed.as_secs_f64() / outcome.elapsed.as_secs_f64()
    );
    println!("{}", lab.stats().summary_line());
}
