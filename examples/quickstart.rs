//! Quickstart: build an Alya container image, then run the committed
//! `examples/quickstart.hsim` campaign — the artery CFD case deployed on
//! two MareNostrum4 nodes under both Singularity image techniques.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The same script drives the reproduction binary directly:
//!
//! ```sh
//! cargo run --release -p harborsim-bench --bin reproduce_all -- \
//!     --script examples/quickstart.hsim
//! ```

use harborsim::container::build::{alya_recipe, BuildEngine};
use harborsim::des::trace::Recorder;
use harborsim::hw::presets;
use harborsim::study::lab::QueryEngine;
use harborsim::study::report::{fmt_bytes, fmt_seconds};
use harborsim::study::script;

/// The campaign this example runs, committed next to it.
const SCRIPT: &str = include_str!("quickstart.hsim");

fn main() {
    let cluster = presets::marenostrum4();
    println!(
        "Cluster: {} — {} nodes x {} cores ({}), {}",
        cluster.name,
        cluster.node_count,
        cluster.node.cores(),
        cluster.node.cpu.name,
        cluster.interconnect
    );

    // 1. build the image from its recipe
    let recipe = alya_recipe();
    let build = BuildEngine::self_contained(cluster.node.cpu.clone())
        .build(&recipe)
        .expect("recipe builds");
    println!(
        "\nBuilt image {:?}: {} layers, rootfs {}, build time {}",
        build.manifest.name,
        build.manifest.layers.len(),
        fmt_bytes(build.manifest.uncompressed_bytes()),
        fmt_seconds(build.build_seconds),
    );
    println!("Manifest digest: {}", build.manifest.digest().short());

    // 2. compile the committed campaign script: every run is a full
    //    scenario with a canonical plan-key fingerprint, resolved through
    //    the lab's plan cache exactly like the paper experiments
    let compiled = script::compile_str(SCRIPT).expect("quickstart.hsim compiles");
    let campaign = &compiled.campaigns[0];
    println!(
        "\nScript: campaign {:?}, {} runs, seeds {:?}",
        campaign.name,
        campaign.runs.len(),
        compiled.seeds
    );

    let lab = QueryEngine::new();
    let mut elapsed = Vec::new();
    for run in &campaign.runs {
        let plan = lab.plan(&run.scenario).expect("valid scenario");
        println!(
            "\n[{}] {} ranks, engine={}, plan key {:016x}",
            run.labels[0],
            plan.rank_map().ranks(),
            plan.engine_name(),
            run.fingerprint(compiled.taper)
        );
        let outcome = plan.execute(compiled.seeds[0], &mut Recorder::aggregating());
        if let Some(dep) = &outcome.deployment {
            println!(
                "  deployment: all nodes ready in {}",
                fmt_seconds(dep.makespan.as_secs_f64())
            );
        }
        println!(
            "  solver: {} elapsed ({} compute, {:.1}% communication)",
            outcome.elapsed,
            outcome.result.compute,
            outcome.result.comm_fraction() * 100.0
        );
        println!(
            "  traffic: {} inter-node messages, {} over the wire",
            outcome.result.inter_node_msgs,
            fmt_bytes(outcome.result.inter_node_bytes)
        );
        elapsed.push(outcome.elapsed.as_secs_f64());
    }

    // 3. the self-contained image loses the Omni-Path native transport —
    //    the paper's whole portability story, visible as the ratio of the
    //    two script runs
    println!(
        "\nSelf-contained vs system-specific: {:.2}x slower (IPoFabric instead of PSM2)",
        elapsed[1] / elapsed[0]
    );
    println!("{}", lab.stats().summary_line());
}
