//! Artery physics: run the *real* mini-Alya solvers (not the performance
//! models) — the 3D CFD tube flow with its Poiseuille validation, the
//! slab-decomposed run over the functional thread MPI, and the coupled
//! FSI pulse propagation.
//!
//! ```sh
//! cargo run --release --example artery_physics
//! ```

use harborsim::alya::cfd::{CfdConfig, CfdSolver};
use harborsim::alya::dist::run_distributed;
use harborsim::alya::fsi::{CoupledFsi, FsiConfig};
use harborsim::alya::mesh::TubeMesh;
use harborsim::alya::pulse1d::{cardiac_inflow, PulseConfig};

fn main() {
    // ---- 3D CFD: develop Poiseuille flow in a tube ----
    println!("== CFD: 3D Navier-Stokes in a masked tube ==");
    let mesh = TubeMesh::cylinder(17, 17, 48, 7.0);
    println!(
        "mesh: {}x{}x{} cells, {} active ({} per cross-section)",
        mesh.nx,
        mesh.ny,
        mesh.nz,
        mesh.active_cells(),
        mesh.cross_section_cells()
    );
    let mut cfg = CfdConfig::stable(&mesh, 25.0, 0.08);
    cfg.parallel = true; // threaded kernels
    let mut solver = CfdSolver::new(mesh.clone(), cfg.clone());
    for block in 1..=6 {
        solver.run(150);
        let mid = solver.mesh.nz / 2;
        println!(
            "  t={:.1}  mean axial velocity={:.4}  max|div u|={:.2e}  (CG {} iters so far)",
            solver.time,
            solver.mean_axial_velocity(mid),
            solver.max_divergence(),
            solver.stats.cg_iters
        );
        if block == 6 {
            let profile = solver.axial_profile(mid);
            let centre = profile
                .iter()
                .filter(|(r, _)| *r < 1.0)
                .map(|(_, w)| *w)
                .fold(0.0_f64, f64::max);
            let mean = solver.mean_axial_velocity(mid);
            println!(
                "  Poiseuille check: centreline/mean = {:.2} (ideal 2.0 on a fine grid)",
                centre / mean
            );
        }
    }
    println!(
        "  executed ~{:.2} GFLOP across {} steps",
        solver.stats.flops / 1e9,
        solver.stats.steps
    );

    // ---- the same case, slab-decomposed over the functional thread MPI ----
    println!("\n== Distributed CFD over in-process MPI (4 ranks) ==");
    let mut serial = CfdSolver::new(mesh.clone(), cfg.clone());
    serial.run(25);
    let dist = run_distributed(&mesh, &cfg, 4, 25);
    let rel: f64 = {
        let num: f64 = serial
            .w
            .iter()
            .zip(&dist.w)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        let den: f64 = serial.w.iter().map(|x| x * x).sum();
        (num / den.max(1e-300)).sqrt()
    };
    println!(
        "  4-rank run: {} halo exchanges, {} CG iterations",
        dist.halo_exchanges, dist.cg_iters
    );
    println!("  relative L2 difference vs sequential solver: {rel:.2e}");
    assert!(rel < 1e-6, "decomposition must preserve the solution");

    // ---- FSI: two codes, partitioned coupling ----
    println!("\n== FSI: 1D pulse-wave fluid + wall mechanics (two codes) ==");
    let fluid_cfg = PulseConfig::artery(200);
    println!(
        "  vessel: 20 cm, {} stations, wave speed {:.0} cm/s",
        fluid_cfg.n,
        fluid_cfg.wave_speed(fluid_cfg.a0)
    );
    let mut fsi = CoupledFsi::new(
        fluid_cfg.clone(),
        40.0,
        FsiConfig::default(),
        cardiac_inflow,
    );
    let steps_per_tenth = (0.1 / fluid_cfg.dt) as usize;
    for tenth in 1..=5 {
        fsi.run(steps_per_tenth);
        let peak = fsi.fluid.a.iter().cloned().fold(f64::MIN, f64::max);
        println!(
            "  t={:.1}s  pulse peak area={:.3} cm^2 at station {}  (mean {:.1} subiters/step)",
            0.1 * tenth as f64,
            peak,
            fsi.fluid.peak_station(),
            fsi.mean_subiters()
        );
    }
    assert_eq!(fsi.stats.non_converged, 0);
    println!("  coupling converged at every step.");

    // ---- the same FSI pair as two codes on disjoint MPI rank groups ----
    println!("\n== Distributed FSI: fluid ranks + solid ranks (3 pairs) ==");
    let steps = (0.1 / fluid_cfg.dt) as usize;
    let mut serial = CoupledFsi::new(
        fluid_cfg.clone(),
        40.0,
        FsiConfig::default(),
        cardiac_inflow,
    );
    serial.run(steps);
    let dist = harborsim::alya::fsi_dist::run_coupled_distributed(
        &fluid_cfg,
        40.0,
        &FsiConfig::default(),
        cardiac_inflow,
        3,
        steps,
    );
    let rel_fsi: f64 = {
        let num: f64 = serial
            .fluid
            .a
            .iter()
            .zip(&dist.a)
            .map(|(x, y)| (x - y) * (x - y))
            .sum();
        let den: f64 = serial.fluid.a.iter().map(|x| x * x).sum();
        (num / den).sqrt()
    };
    println!(
        "  6 ranks (3 fluid + 3 solid), {} total sub-iterations",
        dist.subiters
    );
    println!("  relative L2 difference vs the sequential coupling: {rel_fsi:.2e}");
    assert!(rel_fsi < 1e-9);
}
