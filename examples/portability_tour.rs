//! Portability tour: build the Alya image both ways (self-contained and
//! system-specific) and take it to all three architectures of the study —
//! Skylake/Omni-Path, POWER9/InfiniBand, Armv8/40GbE — including the
//! cross-architecture failure case.
//!
//! ```sh
//! cargo run --release --example portability_tour
//! ```

use harborsim::container::build::{alya_recipe, BuildEngine};
use harborsim::container::containment::check_compat;
use harborsim::container::Containment;
use harborsim::hw::presets;
use harborsim::study::experiments::tables;
use harborsim::study::lab::QueryEngine;
use harborsim::study::report::fmt_bytes;

fn main() {
    println!("== Image techniques ==\n");
    let mn4 = presets::marenostrum4();
    let sc = BuildEngine::self_contained(mn4.node.cpu.clone())
        .build(&alya_recipe())
        .unwrap();
    let ss = BuildEngine::system_specific(mn4.node.cpu.clone(), mn4.interconnect)
        .build(&alya_recipe())
        .unwrap();
    println!(
        "self-contained : rootfs {} — carries its own MPI and fabric stack",
        fmt_bytes(sc.manifest.uncompressed_bytes())
    );
    println!(
        "system-specific: rootfs {} — binds {:?} from the host",
        fmt_bytes(ss.manifest.uncompressed_bytes()),
        ss.manifest.required_host_libs
    );
    for skipped in &ss.skipped {
        println!("    skipped at build time: {skipped}");
    }

    println!("\n== Where does each image run? ==\n");
    for cluster in [
        presets::marenostrum4(),
        presets::cte_power(),
        presets::thunderx(),
    ] {
        for (tag, img) in [
            ("self-contained", &sc.manifest),
            ("system-specific", &ss.manifest),
        ] {
            let verdict = match check_compat(
                img.arch,
                img.isa_level,
                &img.required_host_libs,
                &cluster.node.cpu,
                cluster.interconnect,
            ) {
                Ok(()) => {
                    let fallback =
                        Containment::SelfContained.transport_selection(cluster.interconnect);
                    if tag == "self-contained"
                        && fallback == harborsim::net::TransportSelection::TcpFallback
                    {
                        "runs, but on TCP fallback (no fabric driver inside)".to_string()
                    } else {
                        "runs at native fabric speed".to_string()
                    }
                }
                Err(e) => format!("REFUSES: {e}"),
            };
            println!("{:14} + {:15} -> {verdict}", cluster.name, tag);
        }
    }

    println!("\n== The full §B.2 table (2-node runs on each machine) ==\n");
    let t = tables::portability(&QueryEngine::new(), &[1]);
    println!("{}", t.to_ascii());
    let report = tables::check_portability_shape(&t);
    assert!(report.is_empty(), "shape violations: {report:#?}");
    println!("Shape check: portability claims hold.");
}
