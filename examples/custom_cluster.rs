//! Custom cluster: HarborSim as a *what-if* tool — define your own machine,
//! then ask which fabric and which container strategy your workload needs.
//!
//! Here: a hypothetical 64-node EPYC-class cluster; we sweep the fabric
//! from 1GbE to InfiniBand EDR and compare container strategies on each.
//!
//! ```sh
//! cargo run --release --example custom_cluster
//! ```

use harborsim::hw::{
    ClusterSpec, CpuArch, CpuModel, FabricLayout, InterconnectKind, NodeSpec, SoftwareStack,
    StorageSpec,
};
use harborsim::study::lab::{LabRequest, QueryEngine};
use harborsim::study::report::fmt_seconds;
use harborsim::study::scenario::{Execution, Scenario};
use harborsim::study::workloads;

fn my_cluster(fabric: InterconnectKind) -> ClusterSpec {
    let cpu = CpuModel {
        name: "Hypothetical EPYC 7452".into(),
        arch: CpuArch::X86_64,
        uarch: "Zen2".into(),
        clock_ghz: 2.35,
        cores_per_socket: 32,
        cg_gflops_per_core: 2.4,
        mem_bw_gbs_per_socket: 170.0,
        isa_level: 3,
    };
    ClusterSpec {
        name: format!("what-if ({fabric})"),
        node_count: 64,
        node: NodeSpec::dual_socket(cpu, 256),
        interconnect: fabric,
        // 32-node leaves with a 2:1 oversubscribed spine — a common
        // mid-range procurement choice
        fabric_layout: FabricLayout::fat_tree(32, 0.2e-6, 0.5),
        shared_storage: StorageSpec::gpfs(),
        local_storage: Some(StorageSpec::local_scratch()),
        software: SoftwareStack::singularity_only("2.6.0"),
    }
}

fn main() {
    let lab = QueryEngine::new();
    let case = workloads::artery_cfd_cte();
    println!(
        "Workload: {} on 16 nodes x 64 ranks\n",
        harborsim::alya::workload::AlyaCase::name(&case)
    );
    println!(
        "{:<22} {:>14} {:>18} {:>18} {:>8}",
        "Fabric", "bare-metal", "system-specific", "self-contained", "penalty"
    );
    for fabric in [
        InterconnectKind::GigabitEthernet,
        InterconnectKind::FortyGigEthernet,
        InterconnectKind::InfinibandEdr,
        InterconnectKind::OmniPath100,
    ] {
        // the lab compiles each environment's plan once; the per-seed
        // execution is the only repeated work
        let run = |env: Execution| {
            lab.handle(LabRequest::batch(
                [
                    Scenario::new(my_cluster(fabric), workloads::artery_cfd_cte())
                        .execution(env)
                        .nodes(16)
                        .ranks_per_node(64),
                ],
                &[7],
            ))
            .means()[0]
        };
        let bare = run(Execution::bare_metal());
        let ss = run(Execution::singularity_system_specific());
        let sc = run(Execution::singularity_self_contained());
        println!(
            "{:<22} {:>14} {:>18} {:>18} {:>7.2}x",
            fabric.to_string(),
            fmt_seconds(bare),
            fmt_seconds(ss),
            fmt_seconds(sc),
            sc / bare
        );
    }
    println!(
        "\nReading: on plain Ethernet a portable (self-contained) image costs\n\
         nothing — the native transport *is* TCP. On kernel-bypass fabrics the\n\
         same image falls back to IP emulation; bind the host MPI stack\n\
         (system-specific) to recover bare-metal speed, at the price of\n\
         portability. This is the paper's conclusion, as a decision table."
    );
}
