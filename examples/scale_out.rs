//! Scale-out: the paper's Figure 3 — strong scaling of the FSI artery case
//! on the MareNostrum4 model from 4 to 256 nodes (12,288 cores), bare metal
//! vs system-specific vs self-contained Singularity.
//!
//! ```sh
//! cargo run --release --example scale_out
//! ```

use harborsim::study::experiments::fig3;
use harborsim::study::lab::QueryEngine;

fn main() {
    println!("Reproducing Fig. 3 (Alya artery FSI on MareNostrum4)...\n");
    let fig = fig3::run(&QueryEngine::new(), &[1, 2, 3]);

    println!(
        "{:>6} {:>12} {:>18} {:>18} {:>8}",
        "Nodes", "Bare-metal", "system-specific", "self-contained", "Ideal"
    );
    for &n in &fig3::NODES {
        let g = |label: &str| {
            fig.series_named(label)
                .and_then(|s| s.y_at(n as f64))
                .unwrap_or(f64::NAN)
        };
        println!(
            "{:>6} {:>12.1} {:>18.1} {:>18.1} {:>8.0}",
            n,
            g("Bare-metal"),
            g("Singularity system-specific"),
            g("Singularity self-contained"),
            g("Ideal"),
        );
    }
    println!("\n{}", fig.to_ascii(72, 22));

    let report = fig3::check_shape(&fig);
    if report.is_empty() {
        println!("Shape check: the paper's scalability claims hold.");
        println!(" - the integrated container leverages Omni-Path like bare metal");
        println!(" - the self-contained container stops scaling (IPoFabric latency floor)");
    } else {
        println!("Shape check FAILED:");
        for r in report {
            println!(" - {r}");
        }
        std::process::exit(1);
    }
}
