//! Scale-out: the paper's Figure 3 from a committed campaign script —
//! strong scaling of the FSI artery case on the MareNostrum4 model from
//! 4 to 256 nodes (12,288 cores), bare metal vs system-specific vs
//! self-contained Singularity.
//!
//! The grid lives in `examples/scale_out.hsim`; this stub compiles it,
//! runs it through the lab, folds the times into speedups, and holds the
//! result against the same shape checks the reproduction binary uses.
//!
//! ```sh
//! cargo run --release --example scale_out
//! ```

use harborsim::study::experiments::fig3;
use harborsim::study::lab::{LabRequest, QueryEngine};
use harborsim::study::report::{FigureData, Series};
use harborsim::study::script;

/// The campaign this example runs, committed next to it.
const SCRIPT: &str = include_str!("scale_out.hsim");

fn main() {
    println!("Reproducing Fig. 3 (Alya artery FSI on MareNostrum4) from scale_out.hsim...\n");
    let mut compiled = script::compile_str(SCRIPT).expect("scale_out.hsim compiles");
    let campaign = compiled.campaigns.remove(0);
    let nodes_per_env = campaign.sweep_lens[1];

    let mut labels = Vec::new();
    let mut xs = Vec::new();
    let mut scenarios = Vec::new();
    for run in campaign.runs {
        labels.push(run.labels[0].clone());
        xs.push(run.scenario.nodes as f64);
        scenarios.push(run.scenario);
    }
    let lab = QueryEngine::new();
    let means = lab
        .handle(LabRequest::batch(scenarios, &compiled.seeds))
        .means();

    // speedup vs the grid's first run (4-node bare metal), plus the ideal
    let baseline = means[0];
    let mut series: Vec<Series> = labels
        .chunks(nodes_per_env)
        .zip(xs.chunks(nodes_per_env).zip(means.chunks(nodes_per_env)))
        .map(|(labels, (xs, ts))| {
            let points = xs
                .iter()
                .zip(ts)
                .map(|(&x, &t)| (x, baseline / t))
                .collect();
            Series::new(&labels[0], points)
        })
        .collect();
    series.push(Series::new(
        "Ideal",
        xs[..nodes_per_env].iter().map(|&x| (x, x / 4.0)).collect(),
    ));
    let fig = FigureData {
        id: "fig3".into(),
        title: "Scalability of the Alya artery FSI case in MareNostrum4".into(),
        x_label: "Nodes".into(),
        y_label: "Speedup (vs 4-node bare-metal)".into(),
        series,
    };

    println!(
        "{:>6} {:>12} {:>18} {:>18} {:>8}",
        "Nodes", "Bare-metal", "system-specific", "self-contained", "Ideal"
    );
    for &n in &xs[..nodes_per_env] {
        let g = |label: &str| {
            fig.series_named(label)
                .and_then(|s| s.y_at(n))
                .unwrap_or(f64::NAN)
        };
        println!(
            "{:>6} {:>12.1} {:>18.1} {:>18.1} {:>8.0}",
            n,
            g("Bare-metal"),
            g("Singularity system-specific"),
            g("Singularity self-contained"),
            g("Ideal"),
        );
    }
    println!("\n{}", fig.to_ascii(72, 22));

    let report = fig3::check_shape(&fig);
    if report.is_empty() {
        println!("Shape check: the paper's scalability claims hold.");
        println!(" - the integrated container leverages Omni-Path like bare metal");
        println!(" - the self-contained container stops scaling (IPoFabric latency floor)");
    } else {
        println!("Shape check FAILED:");
        for r in report {
            println!(" - {r}");
        }
        std::process::exit(1);
    }
}
