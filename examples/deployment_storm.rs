//! Deployment storm: the paper's future-work item made concrete — what
//! happens when a whole machine stages container images at once, both as
//! a one-shot sweep (4 … 256 nodes per strategy) and as an *open system*:
//! a committed `.hsim` campaign where Poisson-arriving, Zipf-mixed jobs
//! pull images through the shared registry uplink and parallel
//! filesystem, throttling each other.
//!
//! ```sh
//! cargo run --release --example deployment_storm
//! ```

use harborsim::container::build::{alya_recipe, BuildEngine};
use harborsim::container::deploy::DeployPlan;
use harborsim::des::trace::Recorder;
use harborsim::hw::{presets, StorageSpec};
use harborsim::study::experiments::ext_io;
use harborsim::study::lab::QueryEngine;
use harborsim::study::run_open_campaign;
use harborsim::study::scenario::Execution;
use harborsim::study::script::compile_str;

/// The committed storm campaign: arrivals, mixes, and tenants live in
/// the script, not in code.
const STORM_SCRIPT: &str = include_str!("deployment_storm.hsim");

fn main() {
    let cluster = presets::marenostrum4();
    let image = BuildEngine::self_contained(cluster.node.cpu.clone())
        .build(&alya_recipe())
        .expect("builds")
        .manifest;

    println!(
        "Image: {} layers, {} MB uncompressed\n",
        image.layers.len(),
        image.uncompressed_bytes() / 1_000_000
    );

    println!("Shifter cold vs warm gateway at 64 nodes:");
    for cached in [false, true] {
        let rep = DeployPlan {
            nodes: 64,
            env: Execution::shifter(),
            image: image.clone(),
            shared_storage: StorageSpec::gpfs(),
            registry_uplink_bps: 1.2e9,
            shifter_udi_cached: cached,
            docker_layers_cached: false,
        }
        .run(&mut Recorder::off());
        println!(
            "  cached={cached}: makespan {:.1}s (gateway {:.1}s, {} MB pulled)",
            rep.makespan.as_secs_f64(),
            rep.gateway_seconds,
            rep.bytes_pulled / 1_000_000
        );
    }

    println!("\nFull storm sweep (see also `reproduce_all`):\n");
    let fig = ext_io::run();
    println!("{}", fig.to_ascii(72, 20));

    let report = ext_io::check_shape(&fig);
    if report.is_empty() {
        println!("Findings:");
        println!(" - per-node registry pulls (Docker-style) scale linearly with nodes");
        println!(" - one SIF on the parallel FS absorbs a 256-node storm in seconds");
        println!(" - node-local staging is flat but costs a pre-stage step");
    } else {
        for r in report {
            println!("unexpected: {r}");
        }
        std::process::exit(1);
    }

    // The open-system view: the same storm as an arrival process, driven
    // entirely by the committed campaign script.
    let mut compiled = compile_str(STORM_SCRIPT).expect("committed storm script compiles");
    let scenario = compiled.campaigns.remove(0).runs.remove(0).scenario;
    let lab = QueryEngine::new();
    let storm =
        run_open_campaign(&lab, &scenario, 42, &mut Recorder::off()).expect("storm campaign runs");

    println!(
        "\nOpen-system storm (scripted: Poisson arrivals, Zipf mix, 8 tenants):\n\
         \x20 {} jobs over {:.0} simulated minutes, {:.0}% node utilization",
        storm.jobs,
        storm.makespan_s / 60.0,
        storm.utilization * 100.0
    );
    println!(
        "  peak concurrency: {} registry pulls, {} parallel-FS streams",
        storm.peak_registry_flows, storm.peak_pfs_flows
    );
    for s in &storm.per_runtime {
        println!(
            "  {:<12} {:>3} jobs, {:>2} cold pulls: stage p50 {:>6.1}s  p99 {:>6.1}s  wait p99 {:>6.1}s",
            s.runtime.label(),
            s.jobs,
            s.cold_pulls,
            s.stage.p50(),
            s.stage.p99(),
            s.wait.p99()
        );
    }

    // printed shape checks, same contract as the sweep above
    let docker = storm
        .per_runtime
        .iter()
        .find(|s| s.runtime.label() == "Docker");
    let shifter = storm
        .per_runtime
        .iter()
        .find(|s| s.runtime.label() == "Shifter");
    let mut bad = Vec::new();
    if storm.jobs == 0 {
        bad.push("the storm campaign sampled no jobs".to_string());
    }
    if storm.peak_pfs_flows < 2 {
        bad.push("no co-arriving jobs ever overlapped on the parallel FS".to_string());
    }
    match (docker, shifter) {
        (Some(d), Some(s)) => {
            if d.stage.p99() <= s.stage.p99() {
                bad.push(format!(
                    "Docker's staging tail should exceed Shifter's: {:.1}s vs {:.1}s",
                    d.stage.p99(),
                    s.stage.p99()
                ));
            }
        }
        _ => bad.push("Docker and Shifter must both appear in the mix".to_string()),
    }
    if bad.is_empty() {
        println!("Findings:");
        println!(" - cold (tenant, runtime) pairs pay the pull; warm arrivals stage in seconds");
        println!(" - Docker's per-node registry pulls dominate the staging tail");
        println!(" - backfill keeps utilization up while wide jobs wait out the storm");
    } else {
        for b in bad {
            println!("unexpected: {b}");
        }
        std::process::exit(1);
    }
}
