//! Deployment storm: the paper's future-work item made concrete — what
//! happens when 4 … 256 nodes all stage a container image at job start,
//! for each staging strategy.
//!
//! ```sh
//! cargo run --release --example deployment_storm
//! ```

use harborsim::container::build::{alya_recipe, BuildEngine};
use harborsim::container::deploy::DeployPlan;
use harborsim::des::trace::Recorder;
use harborsim::hw::{presets, StorageSpec};
use harborsim::study::experiments::ext_io;
use harborsim::study::scenario::Execution;

fn main() {
    let cluster = presets::marenostrum4();
    let image = BuildEngine::self_contained(cluster.node.cpu.clone())
        .build(&alya_recipe())
        .expect("builds")
        .manifest;

    println!(
        "Image: {} layers, {} MB uncompressed\n",
        image.layers.len(),
        image.uncompressed_bytes() / 1_000_000
    );

    println!("Shifter cold vs warm gateway at 64 nodes:");
    for cached in [false, true] {
        let rep = DeployPlan {
            nodes: 64,
            env: Execution::shifter(),
            image: image.clone(),
            shared_storage: StorageSpec::gpfs(),
            registry_uplink_bps: 1.2e9,
            shifter_udi_cached: cached,
            docker_layers_cached: false,
        }
        .run(&mut Recorder::off());
        println!(
            "  cached={cached}: makespan {:.1}s (gateway {:.1}s, {} MB pulled)",
            rep.makespan.as_secs_f64(),
            rep.gateway_seconds,
            rep.bytes_pulled / 1_000_000
        );
    }

    println!("\nFull storm sweep (see also `reproduce_all`):\n");
    let fig = ext_io::run();
    println!("{}", fig.to_ascii(72, 20));

    let report = ext_io::check_shape(&fig);
    if report.is_empty() {
        println!("Findings:");
        println!(" - per-node registry pulls (Docker-style) scale linearly with nodes");
        println!(" - one SIF on the parallel FS absorbs a 256-node storm in seconds");
        println!(" - node-local staging is flat but costs a pre-stage step");
    } else {
        for r in report {
            println!("unexpected: {r}");
        }
        std::process::exit(1);
    }
}
