//! Container showdown: a quick rendition of the paper's Figure 1 — four
//! execution technologies across rank×thread balances on the Lenox model —
//! printed as an ASCII chart and table.
//!
//! ```sh
//! cargo run --release --example container_showdown
//! ```

use harborsim::study::experiments::fig1;
use harborsim::study::lab::QueryEngine;
use harborsim::study::report::TableData;

fn main() {
    println!("Reproducing Fig. 1 (artery CFD on Lenox, 112 cores)...\n");
    let fig = fig1::run(&QueryEngine::new(), &[1, 2, 3]);

    // table form
    let mut rows = Vec::new();
    for &(ranks, threads) in &fig1::CONFIGS {
        let mut row = vec![format!("{ranks} x {threads}")];
        for s in &fig.series {
            let t = s.y_at(ranks as f64).unwrap_or(f64::NAN);
            row.push(format!("{t:.1} s"));
        }
        rows.push(row);
    }
    let table = TableData {
        id: "fig1-table".into(),
        title: fig.title.clone(),
        headers: std::iter::once("ranks x threads".to_string())
            .chain(fig.series.iter().map(|s| s.label.clone()))
            .collect(),
        rows,
    };
    println!("{}", table.to_ascii());
    println!("{}", fig.to_ascii(72, 20));

    let report = fig1::check_shape(&fig);
    if report.is_empty() {
        println!("Shape check: all of the paper's qualitative claims hold.");
        println!(" - Singularity and Shifter track bare-metal at every configuration");
        println!(" - Docker's relative cost grows with MPI rank count");
    } else {
        println!("Shape check FAILED:");
        for r in report {
            println!(" - {r}");
        }
        std::process::exit(1);
    }
}
